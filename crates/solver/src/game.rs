//! The community-level best-response iteration (Algorithm 1's outer loop).
//!
//! Customers share their trading amounts `y_n^h`; each in turn re-solves
//! Problem P1 against the aggregate of the others, until the largest
//! per-slot trading change across a full round falls under a tolerance
//! (Gauss–Seidel), or for a fixed number of Jacobi rounds when running the
//! parallel variant.

use std::collections::HashMap;

use nms_obs::{span, NoopRecorder, Recorder, TraceEvent};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use nms_par::Parallelism;
use nms_pricing::{CostModel, NetMeteringTariff, PriceSignal};
use nms_smarthome::{Community, CommunitySchedule, Customer, CustomerSchedule};
use nms_types::ValidateError;

use crate::batch::BatchResponseWorkspace;
use crate::cache::{schedule_fingerprint, PersistentCache, PersistentKey, COLD_WARM_FP};
use crate::{best_response_slice_in, ResponseConfig, ResponseWorkspace, SolverError};

/// Configuration for [`GameEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GameConfig {
    /// Maximum outer rounds over all customers.
    pub max_rounds: usize,
    /// Convergence tolerance on the largest per-slot trading change (kWh).
    pub tolerance: f64,
    /// Per-customer best-response settings.
    pub response: ResponseConfig,
    /// Worker threads for parallel Jacobi rounds; `threads == 1` selects
    /// the sequential Gauss–Seidel iteration (better convergence, the
    /// paper's formulation). Configurations serialized before this knob
    /// existed load as sequential.
    #[serde(default)]
    pub parallelism: Parallelism,
    /// Quantum (kWh) for the best-response memo cache key: two rounds whose
    /// inputs agree after rounding to this grid share one cached response
    /// (DESIGN.md §9). `0.0` — the default, and what old serialized configs
    /// load as — disables the cache entirely, keeping the legacy bit-exact
    /// path.
    #[serde(default)]
    pub cache_quantum: f64,
}

impl GameConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] on zero rounds/threads, a non-positive
    /// tolerance, a negative or non-finite cache quantum, or an invalid
    /// response configuration.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.max_rounds == 0 {
            return Err(ValidateError::new("need at least one round"));
        }
        if !(self.tolerance > 0.0 && self.tolerance.is_finite()) {
            return Err(ValidateError::new("tolerance must be positive"));
        }
        self.parallelism.validate().map_err(ValidateError::new)?;
        if !(self.cache_quantum >= 0.0 && self.cache_quantum.is_finite()) {
            return Err(ValidateError::new(
                "cache quantum must be finite and non-negative",
            ));
        }
        self.response.validate()
    }

    /// A faster preset for large-community simulations.
    pub fn fast() -> Self {
        Self {
            max_rounds: 6,
            tolerance: 0.05,
            response: ResponseConfig::fast(),
            parallelism: Parallelism::SEQUENTIAL,
            cache_quantum: 0.0,
        }
    }
}

impl Default for GameConfig {
    fn default() -> Self {
        Self {
            max_rounds: 12,
            tolerance: 0.01,
            response: ResponseConfig::default(),
            parallelism: Parallelism::SEQUENTIAL,
            cache_quantum: 0.0,
        }
    }
}

/// Hit/miss counters for the best-response memo cache.
///
/// All-zero when the cache is disabled (`cache_quantum == 0.0`). When
/// enabled, every best-response invocation is tallied exactly once, so
/// `hits + misses` equals customers × rounds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Invocations answered from the cache.
    pub hits: usize,
    /// Invocations that ran the full DP + CE best response.
    pub misses: usize,
    /// Hits per round (index = zero-based round); divide by the customer
    /// count for a per-round hit rate.
    pub hits_by_round: Vec<usize>,
}

impl CacheStats {
    /// Overall hit fraction; `0.0` when nothing was tallied.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Result of solving the scheduling game.
#[derive(Debug, Clone)]
pub struct GameOutcome {
    /// The converged (or last-round) community schedule.
    pub schedule: CommunitySchedule,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether the tolerance was met before `max_rounds`.
    pub converged: bool,
    /// Largest per-slot trading change after each round (kWh).
    pub history: Vec<f64>,
    /// Best-response memo cache tallies (all-zero when disabled).
    pub cache: CacheStats,
}

/// Which guideline price each customer's smart controller sees.
///
/// Under a pricing cyberattack, hacked meters receive a *manipulated*
/// signal while healthy meters see the broadcast one — the game must let
/// customers optimize against their own believed prices.
#[derive(Debug, Clone, Copy)]
pub enum PriceAssignment<'a> {
    /// Every customer sees the same signal (the no-attack case).
    Uniform(&'a PriceSignal),
    /// `signals[i]` is what customer `i`'s meter reports.
    PerCustomer(&'a [PriceSignal]),
}

impl<'a> PriceAssignment<'a> {
    /// The signal customer `index` optimizes against.
    #[inline]
    pub fn for_customer(&self, index: usize) -> &'a PriceSignal {
        match self {
            Self::Uniform(signal) => signal,
            Self::PerCustomer(signals) => &signals[index],
        }
    }

    fn validate(&self, customers: usize, slots: usize) -> Result<(), ValidateError> {
        match self {
            Self::Uniform(signal) => {
                if signal.len() != slots {
                    return Err(ValidateError::new(format!(
                        "price signal covers {} slots, community horizon {slots}",
                        signal.len()
                    )));
                }
            }
            Self::PerCustomer(signals) => {
                if signals.len() != customers {
                    return Err(ValidateError::new(format!(
                        "{} price signals for {customers} customers",
                        signals.len()
                    )));
                }
                for (i, signal) in signals.iter().enumerate() {
                    if signal.len() != slots {
                        return Err(ValidateError::new(format!(
                            "price signal for customer {i} covers {} slots, horizon {slots}",
                            signal.len()
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Solves the Net Metering Aware Energy Consumption Scheduling Game for a
/// community under a guideline price (paper §3.1).
///
/// # Examples
///
/// See `tests/game_prediction.rs` for an end-to-end run; unit tests below
/// exercise two-customer communities.
#[derive(Debug)]
pub struct GameEngine<'a> {
    community: &'a Community,
    prices: PriceAssignment<'a>,
    tariff: NetMeteringTariff,
    config: GameConfig,
}

impl<'a> GameEngine<'a> {
    /// Binds a community, the broadcast guideline price, and the tariff.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the price signal's horizon disagrees
    /// with the community's, or the configuration is invalid.
    pub fn new(
        community: &'a Community,
        prices: &'a PriceSignal,
        tariff: NetMeteringTariff,
        config: GameConfig,
    ) -> Result<Self, ValidateError> {
        Self::with_price_assignment(community, PriceAssignment::Uniform(prices), tariff, config)
    }

    /// Like [`GameEngine::new`] but with per-customer price signals (e.g.
    /// hacked meters seeing a manipulated price).
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when any signal's horizon disagrees with
    /// the community's, the signal count is wrong, or the configuration is
    /// invalid.
    pub fn with_price_assignment(
        community: &'a Community,
        prices: PriceAssignment<'a>,
        tariff: NetMeteringTariff,
        config: GameConfig,
    ) -> Result<Self, ValidateError> {
        config.validate()?;
        prices.validate(community.len(), community.horizon().slots())?;
        Ok(Self {
            community,
            prices,
            tariff,
            config,
        })
    }

    /// The bound configuration.
    #[inline]
    pub fn config(&self) -> &GameConfig {
        &self.config
    }

    /// Runs the iterative best-response loop, deterministically seeded from
    /// `rng`.
    ///
    /// Per-customer seeds for every round are drawn from `rng` up front and
    /// regardless of cache hits, so the draw order (and therefore any
    /// downstream consumer of `rng`) is identical across thread counts and
    /// cache settings.
    ///
    /// # Errors
    ///
    /// Propagates [`SolverError`] from any customer's subproblem.
    pub fn solve(&self, rng: &mut impl Rng) -> Result<GameOutcome, SolverError> {
        self.solve_recorded(rng, &NoopRecorder)
    }

    /// [`GameEngine::solve`] with solver telemetry: per-round `game_round`
    /// events (Jacobi/Gauss–Seidel residuals), a closing `game_solved`
    /// event, `solver_round_delta` observations, and
    /// `solver_games` / `solver_rounds` / `solver_cache_*` counters into
    /// `rec` — plus everything [`best_response_recorded`] tallies per
    /// customer. Recording only reads values the solve already produced
    /// (see the crate-level RNG-neutrality contract in `nms-obs`), so the
    /// outcome is bit-identical to [`GameEngine::solve`] under the same
    /// seed.
    ///
    /// # Errors
    ///
    /// Propagates [`SolverError`] from any customer's subproblem.
    pub fn solve_recorded(
        &self,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
    ) -> Result<GameOutcome, SolverError> {
        self.solve_with(rng, rec, None)
    }

    /// [`GameEngine::solve`] backed by a cross-solve [`PersistentCache`]
    /// (DESIGN.md §15): pure-DP customers whose inputs the cache has seen —
    /// in an earlier round, an earlier solve, or an earlier *day* — skip
    /// the re-solve. Hits are exact-verified, so the outcome is
    /// bit-identical to [`GameEngine::solve`] under the same seed; the
    /// supplied cache supersedes the per-solve `cache_quantum` memo.
    ///
    /// # Errors
    ///
    /// Propagates [`SolverError`] from any customer's subproblem.
    pub fn solve_persistent(
        &self,
        rng: &mut impl Rng,
        cache: &mut PersistentCache,
    ) -> Result<GameOutcome, SolverError> {
        self.solve_with(rng, &NoopRecorder, Some(cache))
    }

    /// [`GameEngine::solve_persistent`] with the same telemetry as
    /// [`GameEngine::solve_recorded`].
    ///
    /// # Errors
    ///
    /// Propagates [`SolverError`] from any customer's subproblem.
    pub fn solve_persistent_recorded(
        &self,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
        cache: &mut PersistentCache,
    ) -> Result<GameOutcome, SolverError> {
        self.solve_with(rng, rec, Some(cache))
    }

    fn solve_with(
        &self,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
        mut persistent: Option<&mut PersistentCache>,
    ) -> Result<GameOutcome, SolverError> {
        let _game_span = span(rec, "game_solve");
        let horizon = self.community.horizon();
        let n = self.community.len();

        let mut schedules: Vec<Option<CustomerSchedule>> = vec![None; n];
        // SoA slabs for the round kernels: per-customer trading and price
        // lanes plus the running total, all flat `f64` (DESIGN.md §15).
        let mut batch = BatchResponseWorkspace::new();
        batch.begin(n, horizon.slots());
        for index in 0..n {
            batch.set_price_lane(index, self.prices.for_customer(index));
        }
        let mut history = Vec::new();
        let mut converged = false;
        let mut rounds = 0;
        // A supplied persistent cache supersedes the per-solve memo: its
        // key covers a superset of the per-solve key's inputs, so
        // within-solve repeats hit it too.
        let mut cache = ResponseCache::new(if persistent.is_some() {
            0.0
        } else {
            self.config.cache_quantum
        });
        let mut stats = CacheStats::default();
        // One scratch arena reused across every sequential best response;
        // parallel rounds hold one per worker instead (DESIGN.md §11).
        let mut ws = ResponseWorkspace::default();

        // Per-solve fingerprints for the persistent key: the customer's
        // full definition and its believed price lane, hashed once. `None`
        // marks battery-active customers, whose response consumes the CE
        // RNG stream and must never be cached.
        let persist_meta: Vec<Option<(u64, u64)>> = match persistent.as_deref_mut() {
            None => Vec::new(),
            Some(p) => {
                p.ensure_config(self.persistent_context_hash());
                self.community
                    .iter()
                    .enumerate()
                    .map(|(index, customer)| {
                        if self.config.response.use_battery && customer.battery().is_usable() {
                            None
                        } else {
                            let mut price = Fnv1a::new();
                            for &value in batch.price_lane(index) {
                                price.word(value.to_bits());
                            }
                            Some((customer_fingerprint(customer), price.finish()))
                        }
                    })
                    .collect()
            }
        };
        let tally_rounds = persistent.is_some() || cache.enabled();
        // Memoized warm-start fingerprints for the persistent key. The
        // engine only ever warm-starts customer `i` from the response it
        // last committed for `i`, so the fingerprint rides along instead of
        // being re-hashed from the schedule on every probe: hits hand it
        // back from the entry, misses compute it once at insertion.
        let mut warm_fps: Vec<u64> = vec![COLD_WARM_FP; n];

        for _round in 0..self.config.max_rounds {
            rounds += 1;
            // Seeds drawn up front so sequential and parallel rounds use the
            // same per-customer randomness.
            let seeds: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            let mut round_delta = 0.0_f64;
            if tally_rounds {
                stats.hits_by_round.push(0);
            }

            if self.config.parallelism.threads <= 1 {
                // Gauss–Seidel over the flat lanes: others = total − lane,
                // solve, then total = others + response — the exact per-slot
                // operations the series path performed, each a tight loop
                // over contiguous f64 slices.
                for (index, customer) in self.community.iter().enumerate() {
                    batch.fill_others(index);
                    let probe = self.probe(
                        &batch,
                        index,
                        &mut cache,
                        persistent.as_deref_mut(),
                        &persist_meta,
                        &warm_fps,
                        &schedules,
                        &mut stats,
                    );
                    let response = match probe {
                        Probe::Hit(hit, response_fp) => {
                            if let Some(fp) = response_fp {
                                warm_fps[index] = fp;
                            }
                            hit
                        }
                        Probe::Miss(key) => {
                            let mut child = ChaCha8Rng::seed_from_u64(seeds[index]);
                            let cost_model =
                                CostModel::new(self.prices.for_customer(index), self.tariff);
                            let response = best_response_slice_in(
                                customer,
                                batch.others(),
                                cost_model,
                                &self.config.response,
                                schedules[index].as_ref(),
                                &mut child,
                                rec,
                                &mut ws,
                            )?;
                            if let Some(fp) =
                                store(key, &response, &mut cache, persistent.as_deref_mut())
                            {
                                warm_fps[index] = fp;
                            }
                            response
                        }
                    };
                    let delta = batch.max_abs_delta(index, response.trading().as_slice());
                    round_delta = round_delta.max(delta);
                    batch.commit_gauss_seidel(index, response.trading().as_slice());
                    schedules[index] = Some(response);
                }
                // Round boundary: rebuild `total` from the lanes, exactly as
                // the Jacobi branch does. The incremental per-commit update
                // (`total = others + response`) accumulates a different
                // floating-point rounding history every round, so a game
                // whose discrete schedules settle into a limit cycle would
                // still never present bitwise-repeating inputs and the
                // persistent cache's exact verification could never hit.
                // Re-accumulating from the lanes makes the round-boundary
                // state a pure function of the lanes themselves: periodic
                // schedules now give bitwise-periodic rounds.
                batch.rebuild_total();
            } else {
                // Jacobi: all respond to the same snapshot of the lanes, in
                // parallel. Cache lookups run sequentially against the
                // snapshot; only the misses fan out to the worker pool. The
                // lanes stay untouched until the commit loop below, so the
                // whole round reads one consistent snapshot.
                let mut responses: Vec<Option<CustomerSchedule>> = vec![None; n];
                let mut misses: Vec<(usize, PendingKey)> = Vec::new();
                for index in 0..n {
                    batch.fill_others(index);
                    let probe = self.probe(
                        &batch,
                        index,
                        &mut cache,
                        persistent.as_deref_mut(),
                        &persist_meta,
                        &warm_fps,
                        &schedules,
                        &mut stats,
                    );
                    match probe {
                        Probe::Hit(hit, response_fp) => {
                            if let Some(fp) = response_fp {
                                warm_fps[index] = fp;
                            }
                            responses[index] = Some(hit);
                        }
                        Probe::Miss(key) => misses.push((index, key)),
                    }
                }
                let miss_indices: Vec<usize> = misses.iter().map(|(index, _)| *index).collect();
                let computed =
                    self.parallel_round(&batch, &schedules, &seeds, &miss_indices, rec)?;
                for ((index, key), response) in misses.into_iter().zip(computed) {
                    if let Some(fp) = store(key, &response, &mut cache, persistent.as_deref_mut())
                    {
                        warm_fps[index] = fp;
                    }
                    responses[index] = Some(response);
                }
                for (index, response) in responses.into_iter().enumerate() {
                    let response = response.expect("every customer answered this round");
                    let delta = batch.max_abs_delta(index, response.trading().as_slice());
                    round_delta = round_delta.max(delta);
                    batch.set_lane(index, response.trading().as_slice());
                    schedules[index] = Some(response);
                }
                batch.rebuild_total();
            }

            history.push(round_delta);
            rec.observe("solver_round_delta", round_delta);
            if rec.enabled() {
                let mut event = TraceEvent::new("game_round")
                    .field("round", rounds as f64)
                    .field("delta", round_delta);
                if cache.enabled() {
                    let round_hits = stats.hits_by_round.last().copied().unwrap_or(0);
                    event = event.field("cache_hits", round_hits as f64);
                }
                rec.event(&event);
            }
            if round_delta <= self.config.tolerance {
                converged = true;
                break;
            }
        }

        rec.add("solver_games", 1);
        rec.add("solver_rounds", rounds as u64);
        if converged {
            rec.add("solver_games_converged", 1);
        }
        rec.add("solver_cache_hits", stats.hits as u64);
        rec.add("solver_cache_misses", stats.misses as u64);
        if rec.enabled() {
            rec.event(
                &TraceEvent::new("game_solved")
                    .field("rounds", rounds as f64)
                    .field("converged", f64::from(u8::from(converged)))
                    .field("final_delta", history.last().copied().unwrap_or(0.0))
                    .field("cache_hits", stats.hits as f64)
                    .field("cache_misses", stats.misses as f64),
            );
        }

        let schedules: Vec<CustomerSchedule> = schedules
            .into_iter()
            .map(|s| s.expect("every customer scheduled at least once"))
            .collect();
        let schedule = CommunitySchedule::new(horizon, schedules)?;
        Ok(GameOutcome {
            schedule,
            rounds,
            converged,
            history,
            cache: stats,
        })
    }

    /// One parallel Jacobi round over the given customer indices (the cache
    /// misses; every index when the cache is disabled), via the ordered
    /// deterministic [`nms_par::par_map`]. Workers read the immutable lane
    /// snapshot and fill others into a per-worker scratch buffer.
    fn parallel_round(
        &self,
        batch: &BatchResponseWorkspace,
        schedules: &[Option<CustomerSchedule>],
        seeds: &[u64],
        indices: &[usize],
        rec: &dyn Recorder,
    ) -> Result<Vec<CustomerSchedule>, SolverError> {
        // Workers record only the commutative metric methods (via
        // best_response_slice_in), so totals stay reproducible at any
        // thread count. Each worker owns one scratch arena plus an others
        // buffer for its whole run, so steady-state rounds allocate nothing
        // per response.
        nms_par::par_map_scratch_recorded(
            self.config.parallelism.threads,
            indices,
            rec,
            || (ResponseWorkspace::default(), Vec::new()),
            |(ws, others), _, &index| {
                let customer = &self.community.customers()[index];
                batch.fill_others_into(index, others);
                let mut child = ChaCha8Rng::seed_from_u64(seeds[index]);
                let cost_model = CostModel::new(self.prices.for_customer(index), self.tariff);
                best_response_slice_in(
                    customer,
                    others,
                    cost_model,
                    &self.config.response,
                    schedules[index].as_ref(),
                    &mut child,
                    rec,
                    ws,
                )
            },
        )
    }

    /// Consults whichever cache is active for customer `index` against the
    /// others lane just filled in `batch`. Tallies per-solve [`CacheStats`]
    /// for both cache kinds.
    #[allow(clippy::too_many_arguments)]
    fn probe(
        &self,
        batch: &BatchResponseWorkspace,
        index: usize,
        cache: &mut ResponseCache,
        persistent: Option<&mut PersistentCache>,
        persist_meta: &[Option<(u64, u64)>],
        warm_fps: &[u64],
        schedules: &[Option<CustomerSchedule>],
        stats: &mut CacheStats,
    ) -> Probe {
        if let Some(persistent) = persistent {
            return match persist_meta[index] {
                None => {
                    // Battery-active: the CE step consumes the per-customer
                    // RNG stream, so the response is never cached and always
                    // tallies as a miss.
                    persistent.tally_uncacheable();
                    stats.misses += 1;
                    Probe::Miss(PendingKey::Uncached)
                }
                Some((customer_fp, price_fp)) => {
                    let key =
                        persistent.keys(customer_fp, price_fp, batch.others(), warm_fps[index]);
                    match persistent.lookup(&key) {
                        Some((hit, response_fp)) => {
                            stats.hits += 1;
                            if let Some(last) = stats.hits_by_round.last_mut() {
                                *last += 1;
                            }
                            Probe::Hit(hit, Some(response_fp))
                        }
                        None => {
                            stats.misses += 1;
                            Probe::Miss(PendingKey::Persistent(key))
                        }
                    }
                }
            };
        }
        let key = cache.key(index, batch.others(), schedules[index].as_ref());
        match cache.lookup(key, stats) {
            Some(hit) => Probe::Hit(hit, None),
            None => Probe::Miss(match key {
                Some(key) => PendingKey::PerSolve(key),
                None => PendingKey::Uncached,
            }),
        }
    }

    /// Fingerprint of everything a persistently cached response depends on
    /// besides its per-invocation key: the response configuration and the
    /// tariff. A [`PersistentCache`] drops its entries when this changes.
    fn persistent_context_hash(&self) -> u64 {
        let mut hash = Fnv1a::new();
        hash.bytes(format!("{:?}|{:?}", self.config.response, self.tariff).as_bytes());
        hash.finish()
    }
}

/// Outcome of a cache probe for one best-response invocation. Persistent
/// hits carry the response's stored [`schedule_fingerprint`] so the caller
/// can use it as the next probe's warm-start word.
enum Probe {
    Hit(CustomerSchedule, Option<u64>),
    Miss(PendingKey),
}

/// Where to store a freshly computed response after a miss.
enum PendingKey {
    /// No cache active for this invocation.
    Uncached,
    /// Per-solve memo cache key.
    PerSolve(u64),
    /// Persistent cross-solve key pair.
    Persistent(PersistentKey),
}

/// Stores a freshly computed response under its pending key. Persistent
/// inserts fingerprint the response once and return that word — the
/// caller's memoized warm-start fingerprint for the next probe.
fn store(
    key: PendingKey,
    response: &CustomerSchedule,
    cache: &mut ResponseCache,
    persistent: Option<&mut PersistentCache>,
) -> Option<u64> {
    match key {
        PendingKey::Uncached => None,
        PendingKey::PerSolve(key) => {
            cache.insert(Some(key), response);
            None
        }
        PendingKey::Persistent(key) => {
            let response_fp = schedule_fingerprint(response);
            if let Some(persistent) = persistent {
                persistent.insert(&key, response, response_fp);
            }
            Some(response_fp)
        }
    }
}

/// Per-solve memo cache for best responses, keyed on a quantized
/// fingerprint of everything the response depends on: the customer index,
/// that customer's believed price signal, the aggregate trading of the
/// others, and the warm-start schedule. In late rounds these inputs settle
/// onto the quantization grid, so re-solves collapse into lookups.
///
/// Cache hits skip the DP + CE re-solve but never the per-round seed draw,
/// so the caller-visible RNG stream is unchanged by caching.
struct ResponseCache {
    quantum: f64,
    map: HashMap<u64, CustomerSchedule>,
}

impl ResponseCache {
    fn new(quantum: f64) -> Self {
        Self {
            quantum,
            map: HashMap::new(),
        }
    }

    fn enabled(&self) -> bool {
        self.quantum > 0.0
    }

    /// The cache key for one invocation, `None` when disabled.
    fn key(
        &self,
        index: usize,
        others_trading: &[f64],
        warm: Option<&CustomerSchedule>,
    ) -> Option<u64> {
        if !self.enabled() {
            return None;
        }
        let mut hash = Fnv1a::new();
        hash.word(index as u64);
        for &v in others_trading {
            hash.word(self.quantize(v));
        }
        match warm {
            None => hash.word(0),
            Some(schedule) => {
                hash.word(1);
                for appliance in schedule.appliance_schedules() {
                    for &v in appliance.energy().iter() {
                        hash.word(self.quantize(v));
                    }
                }
                for level in schedule.battery() {
                    hash.word(self.quantize(level.value()));
                }
            }
        }
        Some(hash.finish())
    }

    fn lookup(&self, key: Option<u64>, stats: &mut CacheStats) -> Option<CustomerSchedule> {
        let key = key?;
        match self.map.get(&key) {
            Some(hit) => {
                stats.hits += 1;
                if let Some(last) = stats.hits_by_round.last_mut() {
                    *last += 1;
                }
                Some(hit.clone())
            }
            None => {
                stats.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: Option<u64>, response: &CustomerSchedule) {
        if let Some(key) = key {
            self.map.insert(key, response.clone());
        }
    }

    /// Rounds a value onto the quantization grid; values within half a
    /// quantum of each other map to the same cell.
    fn quantize(&self, value: f64) -> u64 {
        ((value / self.quantum).round() as i64) as u64
    }
}

/// Exhaustive content fingerprint of one customer for the persistent-cache
/// key: every field a pure-DP best response reads — identity, horizon,
/// appliances (levels + task windows), battery, PV profile, base load —
/// hashed over raw `f64` bit patterns. Length words guard the boundaries
/// of the variable-length sections so adjacent sequences cannot alias.
fn customer_fingerprint(customer: &Customer) -> u64 {
    let mut fp = Fnv1a::new();
    fp.word(customer.id().index() as u64);
    let horizon = customer.horizon();
    fp.word(horizon.slots() as u64);
    fp.word(horizon.slot_hours().to_bits());
    fp.word(customer.appliances().len() as u64);
    for appliance in customer.appliances() {
        fp.word(appliance.id().index() as u64);
        let kind = appliance.kind().name();
        fp.word(kind.len() as u64);
        fp.bytes(kind.as_bytes());
        let levels = appliance.levels().as_slice();
        fp.word(levels.len() as u64);
        for level in levels {
            fp.word(level.value().to_bits());
        }
        let task = appliance.task();
        fp.word(task.energy().value().to_bits());
        fp.word(task.start() as u64);
        fp.word(task.deadline() as u64);
    }
    let battery = customer.battery();
    fp.word(battery.capacity().value().to_bits());
    fp.word(battery.initial_charge().value().to_bits());
    match battery.slot_throughput_limit() {
        None => fp.word(0),
        Some(limit) => {
            fp.word(1);
            fp.word(limit.value().to_bits());
        }
    }
    fp.word(customer.pv().rating().value().to_bits());
    for &value in customer.pv().profile().iter() {
        fp.word(value.to_bits());
    }
    for &value in customer.base_load().iter() {
        fp.word(value.to_bits());
    }
    fp.finish()
}

/// FNV-1a-style 64-bit hasher, never persisted — values live only inside
/// this process's cache keys and fingerprints, so the mixing scheme can
/// change freely between versions. Shared with the persistent cache's key
/// pairs (`crate::cache`).
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes a whole `u64` in one xor + multiply step. Eight times fewer
    /// operations than byte-at-a-time FNV-1a; the hot cache-probe path
    /// hashes tens of words per best-response invocation, so this is the
    /// difference between the probe costing less than the DP it saves and
    /// more.
    #[inline]
    pub(crate) fn word(&mut self, word: u64) {
        self.0 ^= word;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_smarthome::{
        clear_sky_profile, Appliance, ApplianceKind, Battery, Customer, PowerLevels, PvPanel,
        TaskSpec,
    };
    use nms_types::{ApplianceId, CustomerId, Horizon, Kw, Kwh};

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    fn small_community(n: usize, with_der: bool) -> Community {
        let customers: Vec<Customer> = (0..n)
            .map(|i| {
                let mut builder = Customer::builder(CustomerId::new(i), day())
                    .appliance(Appliance::new(
                        ApplianceId::new(0),
                        ApplianceKind::WaterHeater,
                        PowerLevels::stepped(Kw::new(2.0), 2).unwrap(),
                        TaskSpec::new(Kwh::new(3.0), 0, 23).unwrap(),
                    ))
                    .appliance(Appliance::new(
                        ApplianceId::new(1),
                        ApplianceKind::Dishwasher,
                        PowerLevels::on_off(Kw::new(1.0)).unwrap(),
                        TaskSpec::new(Kwh::new(1.0), 17, 22).unwrap(),
                    ));
                if with_der {
                    builder = builder
                        .battery(Battery::new(Kwh::new(3.0), Kwh::ZERO).unwrap())
                        .pv(
                            PvPanel::new(Kw::new(2.0), clear_sky_profile(day(), Kw::new(2.0)))
                                .unwrap(),
                        );
                }
                builder.build().unwrap()
            })
            .collect();
        Community::new(day(), customers).unwrap()
    }

    fn tou_prices() -> PriceSignal {
        PriceSignal::time_of_use(day(), 0.05, 0.3).unwrap()
    }

    #[test]
    fn customer_fingerprint_discriminates_every_field_class() {
        let base = |id: usize| {
            Customer::builder(CustomerId::new(id), day())
                .appliance(Appliance::new(
                    ApplianceId::new(0),
                    ApplianceKind::WaterHeater,
                    PowerLevels::stepped(Kw::new(2.0), 2).unwrap(),
                    TaskSpec::new(Kwh::new(3.0), 0, 23).unwrap(),
                ))
                .pv(PvPanel::new(Kw::new(2.0), clear_sky_profile(day(), Kw::new(2.0))).unwrap())
        };
        let reference = customer_fingerprint(&base(0).build().unwrap());
        assert_eq!(
            reference,
            customer_fingerprint(&base(0).build().unwrap()),
            "identical content must fingerprint identically"
        );
        let variants = [
            base(1).build().unwrap(),
            base(0)
                .appliance(Appliance::new(
                    ApplianceId::new(1),
                    ApplianceKind::Dishwasher,
                    PowerLevels::on_off(Kw::new(1.0)).unwrap(),
                    TaskSpec::new(Kwh::new(1.0), 17, 22).unwrap(),
                ))
                .build()
                .unwrap(),
            Customer::builder(CustomerId::new(0), day())
                .appliance(Appliance::new(
                    ApplianceId::new(0),
                    ApplianceKind::WaterHeater,
                    PowerLevels::stepped(Kw::new(2.0), 2).unwrap(),
                    TaskSpec::new(Kwh::new(3.0), 1, 23).unwrap(), // window shifted
                ))
                .pv(PvPanel::new(Kw::new(2.0), clear_sky_profile(day(), Kw::new(2.0))).unwrap())
                .build()
                .unwrap(),
            base(0)
                .battery(Battery::new(Kwh::new(3.0), Kwh::ZERO).unwrap())
                .build()
                .unwrap(),
            base(0)
                .base_load(nms_types::TimeSeries::filled(day(), 0.25))
                .build()
                .unwrap(),
        ];
        for (i, variant) in variants.iter().enumerate() {
            assert_ne!(
                reference,
                customer_fingerprint(variant),
                "variant {i} must change the fingerprint"
            );
        }
    }

    #[test]
    fn config_validation() {
        assert!(GameConfig::default().validate().is_ok());
        assert!(GameConfig {
            max_rounds: 0,
            ..GameConfig::default()
        }
        .validate()
        .is_err());
        assert!(GameConfig {
            tolerance: 0.0,
            ..GameConfig::default()
        }
        .validate()
        .is_err());
        assert!(GameConfig {
            parallelism: Parallelism::new(0),
            ..GameConfig::default()
        }
        .validate()
        .is_err());
        assert!(GameConfig {
            cache_quantum: -1.0,
            ..GameConfig::default()
        }
        .validate()
        .is_err());
        assert!(GameConfig {
            cache_quantum: f64::NAN,
            ..GameConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn engine_rejects_mismatched_price_horizon() {
        let community = small_community(2, false);
        let prices = PriceSignal::flat(Horizon::hourly(48), 0.1).unwrap();
        assert!(GameEngine::new(
            &community,
            &prices,
            NetMeteringTariff::default(),
            GameConfig::default()
        )
        .is_err());
    }

    #[test]
    fn game_converges_on_small_community() {
        let community = small_community(4, false);
        let prices = tou_prices();
        let engine = GameEngine::new(
            &community,
            &prices,
            NetMeteringTariff::default(),
            GameConfig::default(),
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let outcome = engine.solve(&mut rng).unwrap();
        assert!(outcome.converged, "history: {:?}", outcome.history);
        // Flexible load avoids the on-peak windows.
        let schedule = &outcome.schedule;
        let peak_demand: f64 = (17..21).map(|h| schedule.grid_demand()[h]).sum();
        let offpeak_demand: f64 = (0..7).map(|h| schedule.grid_demand()[h]).sum();
        assert!(offpeak_demand > peak_demand);
    }

    #[test]
    fn der_community_draws_less_from_grid() {
        let prices = tou_prices();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let plain = small_community(3, false);
        let engine = GameEngine::new(
            &plain,
            &prices,
            NetMeteringTariff::default(),
            GameConfig::fast(),
        )
        .unwrap();
        let base = engine.solve(&mut rng).unwrap();

        let der = small_community(3, true);
        let engine = GameEngine::new(
            &der,
            &prices,
            NetMeteringTariff::default(),
            GameConfig::fast(),
        )
        .unwrap();
        let mut rng2 = ChaCha8Rng::seed_from_u64(11);
        let with_der = engine.solve(&mut rng2).unwrap();

        let total = |o: &GameOutcome| -> f64 { o.schedule.grid_demand_clamped().total() };
        assert!(
            total(&with_der) < total(&base) - 1.0,
            "der {} vs base {}",
            total(&with_der),
            total(&base)
        );
    }

    #[test]
    fn history_is_weakly_informative() {
        let community = small_community(3, false);
        let prices = tou_prices();
        let engine = GameEngine::new(
            &community,
            &prices,
            NetMeteringTariff::default(),
            GameConfig::default(),
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let outcome = engine.solve(&mut rng).unwrap();
        assert_eq!(outcome.history.len(), outcome.rounds);
        // The last round's delta is within tolerance iff converged.
        let last = *outcome.history.last().unwrap();
        assert_eq!(outcome.converged, last <= engine.config().tolerance);
    }

    #[test]
    fn parallel_matches_shape_of_sequential() {
        let community = small_community(4, true);
        let prices = tou_prices();
        let mut sequential_config = GameConfig::fast();
        sequential_config.max_rounds = 4;
        let engine = GameEngine::new(
            &community,
            &prices,
            NetMeteringTariff::default(),
            sequential_config,
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let sequential = engine.solve(&mut rng).unwrap();

        let mut parallel_config = sequential_config;
        parallel_config.parallelism = Parallelism::new(4);
        let engine = GameEngine::new(
            &community,
            &prices,
            NetMeteringTariff::default(),
            parallel_config,
        )
        .unwrap();
        let mut rng2 = ChaCha8Rng::seed_from_u64(13);
        let parallel = engine.solve(&mut rng2).unwrap();

        // Jacobi and Gauss–Seidel won't agree exactly, but total consumed
        // energy must (it is constraint-pinned), and demand shapes should
        // correlate.
        let seq_total = sequential.schedule.load().total().value();
        let par_total = parallel.schedule.load().total().value();
        assert!((seq_total - par_total).abs() < 1e-6);
    }

    #[test]
    fn jacobi_rounds_are_thread_count_invariant() {
        // Jacobi customers respond to a per-round snapshot with pre-drawn
        // per-customer seeds, so the worker count cannot affect the result.
        let community = small_community(5, true);
        let prices = tou_prices();
        let run = |threads: usize| {
            let mut config = GameConfig::fast();
            config.max_rounds = 3;
            config.parallelism = Parallelism::new(threads);
            let engine =
                GameEngine::new(&community, &prices, NetMeteringTariff::default(), config).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(21);
            engine.solve(&mut rng).unwrap()
        };
        let two = run(2);
        let four = run(4);
        assert_eq!(two.history, four.history);
        assert_eq!(two.rounds, four.rounds);
        for (a, b) in two
            .schedule
            .customer_schedules()
            .iter()
            .zip(four.schedule.customer_schedules())
        {
            assert_eq!(a.trading(), b.trading());
            assert_eq!(a.battery(), b.battery());
        }
    }

    #[test]
    fn cache_disabled_by_default() {
        let community = small_community(3, false);
        let prices = tou_prices();
        let engine = GameEngine::new(
            &community,
            &prices,
            NetMeteringTariff::default(),
            GameConfig::fast(),
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let outcome = engine.solve(&mut rng).unwrap();
        assert_eq!(outcome.cache, CacheStats::default());
        assert_eq!(outcome.cache.hit_rate(), 0.0);
    }

    #[test]
    fn persistent_cache_is_bit_identical_and_reuses_across_solves() {
        // Battery-less customers are pure DP, so every response is
        // cacheable. A persistent cache must (a) leave the solve
        // bit-identical to the uncached engine and (b) answer a repeat of
        // the identical solve from its entries — the cross-day reuse the
        // supervised runner relies on.
        let community = small_community(4, false);
        let prices = tou_prices();
        let mut config = GameConfig::fast();
        config.max_rounds = 12;
        config.tolerance = 1e-6;
        let engine =
            GameEngine::new(&community, &prices, NetMeteringTariff::default(), config).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let plain = engine.solve(&mut rng).unwrap();

        let mut cache = PersistentCache::new(1e-6).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let first = engine.solve_persistent(&mut rng, &mut cache).unwrap();
        for (a, b) in plain
            .schedule
            .customer_schedules()
            .iter()
            .zip(first.schedule.customer_schedules())
        {
            assert_eq!(a.trading(), b.trading());
            assert_eq!(a.battery(), b.battery());
        }
        assert_eq!(
            first.cache.hits + first.cache.misses,
            community.len() * first.rounds
        );

        // The identical solve again: round one re-probes the cold-start
        // inputs the first solve already answered, so it hits immediately.
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let second = engine.solve_persistent(&mut rng, &mut cache).unwrap();
        for (a, b) in plain
            .schedule
            .customer_schedules()
            .iter()
            .zip(second.schedule.customer_schedules())
        {
            assert_eq!(a.trading(), b.trading());
        }
        assert_eq!(
            second.cache.misses, 0,
            "a repeated solve must be answered entirely from the cache: {:?}",
            second.cache
        );
        assert_eq!(
            second.cache.hits_by_round.first().copied().unwrap_or(0),
            community.len()
        );
    }

    #[test]
    fn persistent_cache_never_caches_battery_customers() {
        // Battery-active responses consume the CE RNG stream; caching one
        // would desynchronize a later solve. They tally as misses and leave
        // no entries, while the solve stays bit-identical to the uncached
        // engine.
        let community = small_community(3, true);
        let prices = tou_prices();
        let engine = GameEngine::new(
            &community,
            &prices,
            NetMeteringTariff::default(),
            GameConfig::fast(),
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let plain = engine.solve(&mut rng).unwrap();

        let mut cache = PersistentCache::new(1e-6).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let cached = engine.solve_persistent(&mut rng, &mut cache).unwrap();
        for (a, b) in plain
            .schedule
            .customer_schedules()
            .iter()
            .zip(cached.schedule.customer_schedules())
        {
            assert_eq!(a.trading(), b.trading());
            assert_eq!(a.battery(), b.battery());
        }
        assert_eq!(cached.cache.hits, 0);
        assert_eq!(
            cached.cache.misses,
            community.len() * cached.rounds,
            "every battery-active invocation tallies as a miss"
        );
        assert!(cache.is_empty(), "no battery response may be stored");
    }

    #[test]
    fn persistent_cache_invalidates_on_config_change() {
        let community = small_community(3, false);
        let prices = tou_prices();
        let mut cache = PersistentCache::new(1e-6).unwrap();

        let engine = GameEngine::new(
            &community,
            &prices,
            NetMeteringTariff::default(),
            GameConfig::fast(),
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(25);
        engine.solve_persistent(&mut rng, &mut cache).unwrap();
        assert!(!cache.is_empty());

        // A different response configuration must drop every entry before
        // the solve consults the cache.
        let mut config = GameConfig::fast();
        config.response.dp_resolution *= 2;
        let engine =
            GameEngine::new(&community, &prices, NetMeteringTariff::default(), config).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(25);
        let outcome = engine.solve_persistent(&mut rng, &mut cache).unwrap();
        assert_eq!(cache.invalidations(), 1);
        assert_eq!(
            outcome.cache.hits_by_round.first().copied().unwrap_or(0),
            0,
            "round one after invalidation cannot hit"
        );
    }

    #[test]
    fn memo_cache_preserves_loads_and_hits_late_rounds() {
        // Battery-less customers make the best response pure deterministic
        // DP, and the Jacobi iteration settles into an exact period-2 limit
        // cycle after a few rounds: every late round re-solves a problem the
        // cache has already seen, while the round delta stays above tolerance
        // so the run keeps going. A hit returns exactly what recomputation
        // would, so loads are bit-identical with the cache on or off.
        let community = small_community(4, false);
        let prices = tou_prices();
        let run = |cache_quantum: f64| {
            let mut config = GameConfig::fast();
            config.max_rounds = 12;
            config.tolerance = 1e-6;
            config.parallelism = Parallelism::new(2);
            config.cache_quantum = cache_quantum;
            let engine =
                GameEngine::new(&community, &prices, NetMeteringTariff::default(), config).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(23);
            engine.solve(&mut rng).unwrap()
        };
        let plain = run(0.0);
        let cached = run(1e-6);

        // The cache skips re-solves but must not change what anyone
        // consumes: per-customer load profiles are bit-identical.
        for (a, b) in plain
            .schedule
            .customer_schedules()
            .iter()
            .zip(cached.schedule.customer_schedules())
        {
            assert_eq!(a.load().series(), b.load().series());
        }

        // Late rounds re-solve an (almost) identical problem and should hit.
        assert!(cached.cache.hits > 0, "stats: {:?}", cached.cache);
        let last_round_hits = *cached.cache.hits_by_round.last().unwrap();
        assert!(
            last_round_hits * 2 > community.len(),
            "late-round hit rate too low: {:?}",
            cached.cache
        );
        assert_eq!(
            cached.cache.hits + cached.cache.misses,
            community.len() * cached.rounds
        );
    }
}
