//! The community-level best-response iteration (Algorithm 1's outer loop).
//!
//! Customers share their trading amounts `y_n^h`; each in turn re-solves
//! Problem P1 against the aggregate of the others, until the largest
//! per-slot trading change across a full round falls under a tolerance
//! (Gauss–Seidel), or for a fixed number of Jacobi rounds when running the
//! parallel variant.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use nms_pricing::{CostModel, NetMeteringTariff, PriceSignal};
use nms_smarthome::{Community, CommunitySchedule, CustomerSchedule};
use nms_types::{TimeSeries, ValidateError};

use crate::{best_response, ResponseConfig, SolverError};

/// Configuration for [`GameEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GameConfig {
    /// Maximum outer rounds over all customers.
    pub max_rounds: usize,
    /// Convergence tolerance on the largest per-slot trading change (kWh).
    pub tolerance: f64,
    /// Per-customer best-response settings.
    pub response: ResponseConfig,
    /// Number of worker threads for parallel Jacobi rounds; `1` selects the
    /// sequential Gauss–Seidel iteration (better convergence, the paper's
    /// formulation).
    pub threads: usize,
}

impl GameConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] on zero rounds/threads, a non-positive
    /// tolerance, or an invalid response configuration.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.max_rounds == 0 {
            return Err(ValidateError::new("need at least one round"));
        }
        if !(self.tolerance > 0.0 && self.tolerance.is_finite()) {
            return Err(ValidateError::new("tolerance must be positive"));
        }
        if self.threads == 0 {
            return Err(ValidateError::new("need at least one thread"));
        }
        self.response.validate()
    }

    /// A faster preset for large-community simulations.
    pub fn fast() -> Self {
        Self {
            max_rounds: 6,
            tolerance: 0.05,
            response: ResponseConfig::fast(),
            threads: 1,
        }
    }
}

impl Default for GameConfig {
    fn default() -> Self {
        Self {
            max_rounds: 12,
            tolerance: 0.01,
            response: ResponseConfig::default(),
            threads: 1,
        }
    }
}

/// Result of solving the scheduling game.
#[derive(Debug, Clone)]
pub struct GameOutcome {
    /// The converged (or last-round) community schedule.
    pub schedule: CommunitySchedule,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether the tolerance was met before `max_rounds`.
    pub converged: bool,
    /// Largest per-slot trading change after each round (kWh).
    pub history: Vec<f64>,
}

/// Which guideline price each customer's smart controller sees.
///
/// Under a pricing cyberattack, hacked meters receive a *manipulated*
/// signal while healthy meters see the broadcast one — the game must let
/// customers optimize against their own believed prices.
#[derive(Debug, Clone, Copy)]
pub enum PriceAssignment<'a> {
    /// Every customer sees the same signal (the no-attack case).
    Uniform(&'a PriceSignal),
    /// `signals[i]` is what customer `i`'s meter reports.
    PerCustomer(&'a [PriceSignal]),
}

impl<'a> PriceAssignment<'a> {
    /// The signal customer `index` optimizes against.
    #[inline]
    pub fn for_customer(&self, index: usize) -> &'a PriceSignal {
        match self {
            Self::Uniform(signal) => signal,
            Self::PerCustomer(signals) => &signals[index],
        }
    }

    fn validate(&self, customers: usize, slots: usize) -> Result<(), ValidateError> {
        match self {
            Self::Uniform(signal) => {
                if signal.len() != slots {
                    return Err(ValidateError::new(format!(
                        "price signal covers {} slots, community horizon {slots}",
                        signal.len()
                    )));
                }
            }
            Self::PerCustomer(signals) => {
                if signals.len() != customers {
                    return Err(ValidateError::new(format!(
                        "{} price signals for {customers} customers",
                        signals.len()
                    )));
                }
                for (i, signal) in signals.iter().enumerate() {
                    if signal.len() != slots {
                        return Err(ValidateError::new(format!(
                            "price signal for customer {i} covers {} slots, horizon {slots}",
                            signal.len()
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Solves the Net Metering Aware Energy Consumption Scheduling Game for a
/// community under a guideline price (paper §3.1).
///
/// # Examples
///
/// See `tests/game_prediction.rs` for an end-to-end run; unit tests below
/// exercise two-customer communities.
#[derive(Debug)]
pub struct GameEngine<'a> {
    community: &'a Community,
    prices: PriceAssignment<'a>,
    tariff: NetMeteringTariff,
    config: GameConfig,
}

impl<'a> GameEngine<'a> {
    /// Binds a community, the broadcast guideline price, and the tariff.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the price signal's horizon disagrees
    /// with the community's, or the configuration is invalid.
    pub fn new(
        community: &'a Community,
        prices: &'a PriceSignal,
        tariff: NetMeteringTariff,
        config: GameConfig,
    ) -> Result<Self, ValidateError> {
        Self::with_price_assignment(community, PriceAssignment::Uniform(prices), tariff, config)
    }

    /// Like [`GameEngine::new`] but with per-customer price signals (e.g.
    /// hacked meters seeing a manipulated price).
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when any signal's horizon disagrees with
    /// the community's, the signal count is wrong, or the configuration is
    /// invalid.
    pub fn with_price_assignment(
        community: &'a Community,
        prices: PriceAssignment<'a>,
        tariff: NetMeteringTariff,
        config: GameConfig,
    ) -> Result<Self, ValidateError> {
        config.validate()?;
        prices.validate(community.len(), community.horizon().slots())?;
        Ok(Self {
            community,
            prices,
            tariff,
            config,
        })
    }

    /// The bound configuration.
    #[inline]
    pub fn config(&self) -> &GameConfig {
        &self.config
    }

    /// Runs the iterative best-response loop, deterministically seeded from
    /// `rng`.
    ///
    /// # Errors
    ///
    /// Propagates [`SolverError`] from any customer's subproblem.
    pub fn solve(&self, rng: &mut impl Rng) -> Result<GameOutcome, SolverError> {
        let horizon = self.community.horizon();
        let n = self.community.len();

        let mut schedules: Vec<Option<CustomerSchedule>> = vec![None; n];
        let mut tradings: Vec<TimeSeries<f64>> = vec![TimeSeries::filled(horizon, 0.0); n];
        let mut total = TimeSeries::filled(horizon, 0.0);
        let mut history = Vec::new();
        let mut converged = false;
        let mut rounds = 0;

        for _round in 0..self.config.max_rounds {
            rounds += 1;
            // Seeds drawn up front so sequential and parallel rounds use the
            // same per-customer randomness.
            let seeds: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            let mut round_delta = 0.0_f64;

            if self.config.threads <= 1 {
                // Gauss–Seidel: each customer sees the freshest totals.
                for (index, customer) in self.community.iter().enumerate() {
                    let others = total.sub(&tradings[index]).expect("aligned horizons");
                    let mut child = ChaCha8Rng::seed_from_u64(seeds[index]);
                    let cost_model = CostModel::new(self.prices.for_customer(index), self.tariff);
                    let response = best_response(
                        customer,
                        &others,
                        cost_model,
                        &self.config.response,
                        schedules[index].as_ref(),
                        &mut child,
                    )?;
                    let delta = max_abs_diff(response.trading(), &tradings[index]);
                    round_delta = round_delta.max(delta);
                    total = others.add(response.trading()).expect("aligned horizons");
                    tradings[index] = response.trading().clone();
                    schedules[index] = Some(response);
                }
            } else {
                // Jacobi: all respond to the same snapshot, in parallel.
                let snapshot_total = total.clone();
                let responses =
                    self.parallel_round(&snapshot_total, &tradings, &schedules, &seeds)?;
                for (index, response) in responses.into_iter().enumerate() {
                    let delta = max_abs_diff(response.trading(), &tradings[index]);
                    round_delta = round_delta.max(delta);
                    tradings[index] = response.trading().clone();
                    schedules[index] = Some(response);
                }
                total = TimeSeries::from_fn(horizon, |h| tradings.iter().map(|t| t[h]).sum());
            }

            history.push(round_delta);
            if round_delta <= self.config.tolerance {
                converged = true;
                break;
            }
        }

        let schedules: Vec<CustomerSchedule> = schedules
            .into_iter()
            .map(|s| s.expect("every customer scheduled at least once"))
            .collect();
        let schedule = CommunitySchedule::new(horizon, schedules)?;
        Ok(GameOutcome {
            schedule,
            rounds,
            converged,
            history,
        })
    }

    /// One parallel Jacobi round over all customers.
    fn parallel_round(
        &self,
        snapshot_total: &TimeSeries<f64>,
        tradings: &[TimeSeries<f64>],
        schedules: &[Option<CustomerSchedule>],
        seeds: &[u64],
    ) -> Result<Vec<CustomerSchedule>, SolverError> {
        let n = self.community.len();
        let threads = self.config.threads.min(n);
        let chunk = n.div_ceil(threads);
        let mut results: Vec<Option<Result<CustomerSchedule, SolverError>>> = vec![None; n];

        crossbeam::thread::scope(|scope| {
            for (t, slots) in results.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                let config = &self.config.response;
                let community = self.community;
                let prices = self.prices;
                let tariff = self.tariff;
                scope.spawn(move |_| {
                    for (offset, slot) in slots.iter_mut().enumerate() {
                        let index = start + offset;
                        let customer = &community.customers()[index];
                        let others = snapshot_total
                            .sub(&tradings[index])
                            .expect("aligned horizons");
                        let mut child = ChaCha8Rng::seed_from_u64(seeds[index]);
                        let cost_model = CostModel::new(prices.for_customer(index), tariff);
                        *slot = Some(best_response(
                            customer,
                            &others,
                            cost_model,
                            config,
                            schedules[index].as_ref(),
                            &mut child,
                        ));
                    }
                });
            }
        })
        .expect("worker thread panicked");

        results
            .into_iter()
            .map(|r| r.expect("every index visited"))
            .collect()
    }
}

fn max_abs_diff(a: &TimeSeries<f64>, b: &TimeSeries<f64>) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_smarthome::{
        clear_sky_profile, Appliance, ApplianceKind, Battery, Customer, PowerLevels, PvPanel,
        TaskSpec,
    };
    use nms_types::{ApplianceId, CustomerId, Horizon, Kw, Kwh};

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    fn small_community(n: usize, with_der: bool) -> Community {
        let customers: Vec<Customer> = (0..n)
            .map(|i| {
                let mut builder = Customer::builder(CustomerId::new(i), day())
                    .appliance(Appliance::new(
                        ApplianceId::new(0),
                        ApplianceKind::WaterHeater,
                        PowerLevels::stepped(Kw::new(2.0), 2).unwrap(),
                        TaskSpec::new(Kwh::new(3.0), 0, 23).unwrap(),
                    ))
                    .appliance(Appliance::new(
                        ApplianceId::new(1),
                        ApplianceKind::Dishwasher,
                        PowerLevels::on_off(Kw::new(1.0)).unwrap(),
                        TaskSpec::new(Kwh::new(1.0), 17, 22).unwrap(),
                    ));
                if with_der {
                    builder = builder
                        .battery(Battery::new(Kwh::new(3.0), Kwh::ZERO).unwrap())
                        .pv(
                            PvPanel::new(Kw::new(2.0), clear_sky_profile(day(), Kw::new(2.0)))
                                .unwrap(),
                        );
                }
                builder.build().unwrap()
            })
            .collect();
        Community::new(day(), customers).unwrap()
    }

    fn tou_prices() -> PriceSignal {
        PriceSignal::time_of_use(day(), 0.05, 0.3).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(GameConfig::default().validate().is_ok());
        assert!(GameConfig {
            max_rounds: 0,
            ..GameConfig::default()
        }
        .validate()
        .is_err());
        assert!(GameConfig {
            tolerance: 0.0,
            ..GameConfig::default()
        }
        .validate()
        .is_err());
        assert!(GameConfig {
            threads: 0,
            ..GameConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn engine_rejects_mismatched_price_horizon() {
        let community = small_community(2, false);
        let prices = PriceSignal::flat(Horizon::hourly(48), 0.1).unwrap();
        assert!(GameEngine::new(
            &community,
            &prices,
            NetMeteringTariff::default(),
            GameConfig::default()
        )
        .is_err());
    }

    #[test]
    fn game_converges_on_small_community() {
        let community = small_community(4, false);
        let prices = tou_prices();
        let engine = GameEngine::new(
            &community,
            &prices,
            NetMeteringTariff::default(),
            GameConfig::default(),
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let outcome = engine.solve(&mut rng).unwrap();
        assert!(outcome.converged, "history: {:?}", outcome.history);
        // Flexible load avoids the on-peak windows.
        let schedule = &outcome.schedule;
        let peak_demand: f64 = (17..21).map(|h| schedule.grid_demand()[h]).sum();
        let offpeak_demand: f64 = (0..7).map(|h| schedule.grid_demand()[h]).sum();
        assert!(offpeak_demand > peak_demand);
    }

    #[test]
    fn der_community_draws_less_from_grid() {
        let prices = tou_prices();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let plain = small_community(3, false);
        let engine = GameEngine::new(
            &plain,
            &prices,
            NetMeteringTariff::default(),
            GameConfig::fast(),
        )
        .unwrap();
        let base = engine.solve(&mut rng).unwrap();

        let der = small_community(3, true);
        let engine = GameEngine::new(
            &der,
            &prices,
            NetMeteringTariff::default(),
            GameConfig::fast(),
        )
        .unwrap();
        let mut rng2 = ChaCha8Rng::seed_from_u64(11);
        let with_der = engine.solve(&mut rng2).unwrap();

        let total = |o: &GameOutcome| -> f64 { o.schedule.grid_demand_clamped().total() };
        assert!(
            total(&with_der) < total(&base) - 1.0,
            "der {} vs base {}",
            total(&with_der),
            total(&base)
        );
    }

    #[test]
    fn history_is_weakly_informative() {
        let community = small_community(3, false);
        let prices = tou_prices();
        let engine = GameEngine::new(
            &community,
            &prices,
            NetMeteringTariff::default(),
            GameConfig::default(),
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let outcome = engine.solve(&mut rng).unwrap();
        assert_eq!(outcome.history.len(), outcome.rounds);
        // The last round's delta is within tolerance iff converged.
        let last = *outcome.history.last().unwrap();
        assert_eq!(outcome.converged, last <= engine.config().tolerance);
    }

    #[test]
    fn parallel_matches_shape_of_sequential() {
        let community = small_community(4, true);
        let prices = tou_prices();
        let mut sequential_config = GameConfig::fast();
        sequential_config.max_rounds = 4;
        let engine = GameEngine::new(
            &community,
            &prices,
            NetMeteringTariff::default(),
            sequential_config,
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let sequential = engine.solve(&mut rng).unwrap();

        let mut parallel_config = sequential_config;
        parallel_config.threads = 4;
        let engine = GameEngine::new(
            &community,
            &prices,
            NetMeteringTariff::default(),
            parallel_config,
        )
        .unwrap();
        let mut rng2 = ChaCha8Rng::seed_from_u64(13);
        let parallel = engine.solve(&mut rng2).unwrap();

        // Jacobi and Gauss–Seidel won't agree exactly, but total consumed
        // energy must (it is constraint-pinned), and demand shapes should
        // correlate.
        let seq_total = sequential.schedule.load().total().value();
        let par_total = parallel.schedule.load().total().value();
        assert!((seq_total - par_total).abs() < 1e-6);
    }
}
