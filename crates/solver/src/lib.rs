//! Optimization substrate for the net-metering scheduling game (paper §3).
//!
//! Three solvers cooperate to solve Problem **P1** per customer and the
//! community game around it (Algorithm 1):
//!
//! * [`DpScheduler`] — the dynamic-programming appliance scheduler of \[6\]:
//!   exact energy allocation over a deadline window against an arbitrary
//!   per-slot cost function (paper §3.2, line 4 of Algorithm 1).
//! * [`CrossEntropyOptimizer`] — the stochastic cross-entropy method of \[3\]
//!   used to pick the battery-storage trajectory, the part of P1 that is
//!   non-convex (line 5 of Algorithm 1).
//! * [`GameEngine`] — the outer best-response iteration across customers
//!   sharing their trading amounts `y_n^h` until convergence.
//!
//! A deterministic projected-coordinate-descent battery solver
//! ([`coordinate_descent_battery`]) is included as the ablation baseline for
//! the cross-entropy choice.
//!
//! # Examples
//!
//! ```
//! use nms_solver::{CeConfig, CrossEntropyOptimizer};
//! use rand::SeedableRng;
//!
//! // Minimize a shifted quadratic over a box.
//! let optimizer = CrossEntropyOptimizer::new(CeConfig::default());
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let solution = optimizer.minimize(
//!     |x| (x[0] - 0.3).powi(2) + (x[1] + 0.5).powi(2),
//!     &[(-1.0, 1.0), (-1.0, 1.0)],
//!     &[0.0, 0.0],
//!     &mut rng,
//! );
//! assert!((solution.point[0] - 0.3).abs() < 0.05);
//! assert!((solution.point[1] + 0.5).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod battery;
mod cache;
mod ce;
mod dp;
mod error;
mod game;
mod nash;
mod response;
mod retry;
mod workspace;

pub use batch::BatchResponseWorkspace;
pub use battery::{
    coordinate_descent_battery, optimize_battery, try_optimize_battery,
    try_optimize_battery_budgeted, try_optimize_battery_budgeted_in,
    try_optimize_battery_budgeted_par, BatteryProblem,
};
pub use cache::PersistentCache;
pub use ce::{CeConfig, CeSolution, CeWorkspace, CrossEntropyOptimizer};
pub use dp::{DpScheduler, DpWorkspace};
pub use error::SolverError;
pub use game::{CacheStats, GameConfig, GameEngine, GameOutcome, PriceAssignment};
pub use nms_par::Parallelism;
pub use nash::{nash_gap, NashGap};
pub use response::{
    best_response, best_response_in, best_response_recorded, best_response_reference,
    best_response_slice_in, ResponseConfig,
};
pub use retry::{solve_battery_robust, BatterySolveStage, RobustBatteryOutcome};
pub use workspace::ResponseWorkspace;
