//! Battery-storage optimization (Algorithm 1, line 5).
//!
//! Problem P1 is non-convex in the battery trajectory once the buy/sell
//! branches of Eqn (2) interact with the aggregate trading, so the paper
//! optimizes `b_n = {b¹, …, b^H}` with cross-entropy optimization. The
//! deterministic [`coordinate_descent_battery`] solver is provided as the
//! ablation baseline (see DESIGN.md).

use nms_pricing::CostModel;
use nms_smarthome::Battery;
use nms_types::{BudgetClock, Horizon, Kwh, TimeSeries};
use rand::Rng;

use crate::{CeSolution, CrossEntropyOptimizer, SolverError};

/// Penalty weight for violating the optional per-slot throughput limit;
/// the box `[0, B]` handles the state bounds exactly, the penalty handles
/// the (rarely used) rate constraint.
const THROUGHPUT_PENALTY: f64 = 1e4;

/// The single-customer battery subproblem: appliance load and PV are fixed,
/// only the state-of-charge trajectory varies.
#[derive(Debug, Clone, Copy)]
pub struct BatteryProblem<'a> {
    battery: &'a Battery,
    horizon: Horizon,
    load: &'a [f64],
    generation: &'a [f64],
    others_trading: &'a [f64],
    cost_model: CostModel<'a>,
}

impl<'a> BatteryProblem<'a> {
    /// Bundles the fixed data of the subproblem.
    ///
    /// # Panics
    ///
    /// Panics if the series have differing slot counts.
    pub fn new(
        battery: &'a Battery,
        load: &'a TimeSeries<f64>,
        generation: &'a TimeSeries<f64>,
        others_trading: &'a TimeSeries<f64>,
        cost_model: CostModel<'a>,
    ) -> Self {
        Self::from_slices(
            battery,
            load.horizon(),
            load.as_slice(),
            generation.as_slice(),
            others_trading.as_slice(),
            cost_model,
        )
    }

    /// [`BatteryProblem::new`] over raw per-slot slices — the batch form
    /// used by the structure-of-arrays game kernels, where every series is a
    /// contiguous `f64` lane. Arithmetic is identical to the `TimeSeries`
    /// constructor: the slices hold the exact `f64`s the series would.
    ///
    /// # Panics
    ///
    /// Panics if the slices have differing slot counts or disagree with
    /// `horizon`.
    pub fn from_slices(
        battery: &'a Battery,
        horizon: Horizon,
        load: &'a [f64],
        generation: &'a [f64],
        others_trading: &'a [f64],
        cost_model: CostModel<'a>,
    ) -> Self {
        assert_eq!(load.len(), horizon.slots(), "load/horizon slots");
        assert_eq!(load.len(), generation.len(), "load/generation slots");
        assert_eq!(load.len(), others_trading.len(), "load/others slots");
        assert_eq!(load.len(), cost_model.prices().len(), "load/prices slots");
        Self {
            battery,
            horizon,
            load,
            generation,
            others_trading,
            cost_model,
        }
    }

    /// Number of slots `H` (the decision vector holds `b¹..b^H`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.load.len()
    }

    /// The battery under optimization.
    #[inline]
    pub fn battery(&self) -> &Battery {
        self.battery
    }

    /// The customer's monetary cost (Problem P1's objective) for an interior
    /// trajectory `b¹..b^H`, including the throughput penalty.
    pub fn objective(&self, interior: &[f64]) -> f64 {
        debug_assert_eq!(interior.len(), self.dim());
        let mut prev = self.battery.initial_charge().value();
        let mut total = 0.0;
        let limit = self.battery.slot_throughput_limit().map(Kwh::value);
        for (h, &next) in interior.iter().enumerate() {
            let trading = self.load[h] + next - prev - self.generation[h];
            total += self
                .cost_model
                .slot_cost(h, self.others_trading[h], trading)
                .value();
            if let Some(limit) = limit {
                let excess = ((next - prev).abs() - limit).max(0.0);
                total += THROUGHPUT_PENALTY * excess * excess;
            }
            prev = next;
        }
        total
    }

    /// The customer's trading series implied by an interior trajectory.
    pub fn trading(&self, interior: &[f64]) -> TimeSeries<f64> {
        let mut prev = self.battery.initial_charge().value();
        TimeSeries::from_fn(self.horizon, |h| {
            let next = interior[h];
            let y = self.load[h] + next - prev - self.generation[h];
            prev = next;
            y
        })
    }

    /// Converts an interior trajectory into the full `b⁰..b^H` vector,
    /// projecting each step onto the battery's feasible set: the state
    /// bounds `[0, B]` exactly, and — when a per-slot throughput limit is
    /// configured — each transition clamped to `±limit` around the previous
    /// (projected) state. Optimizers treat the limit as a soft penalty;
    /// this projection makes the returned plan hard-feasible.
    pub fn full_trajectory(&self, interior: &[f64]) -> Vec<Kwh> {
        let mut full = Vec::with_capacity(interior.len() + 1);
        let mut prev = self.battery.initial_charge();
        full.push(prev);
        let limit = self.battery.slot_throughput_limit();
        for &b in interior {
            let mut next = self.battery.clamp_charge(Kwh::new(b));
            if let Some(limit) = limit {
                next = next.clamp(prev - limit, prev + limit);
                next = self.battery.clamp_charge(next);
            }
            full.push(next);
            prev = next;
        }
        full
    }

    /// The idle trajectory (state of charge frozen at the initial level).
    pub fn idle_interior(&self) -> Vec<f64> {
        vec![self.battery.initial_charge().value(); self.dim()]
    }
}

/// Optimizes the battery trajectory with cross-entropy optimization,
/// returning the full `b⁰..b^H` trajectory and the CE diagnostics.
///
/// `warm_start` (an interior `b¹..b^H`, e.g. from the previous game round)
/// both seeds the sampling distribution and acts as a floor: the result is
/// never worse than the warm start or the idle trajectory. For an unusable
/// (zero-capacity) battery this degenerates to the idle trajectory without
/// sampling.
///
/// # Panics
///
/// Panics if `warm_start` is provided with the wrong dimension, or if the
/// objective turns numerically hostile (NaN); use
/// [`try_optimize_battery`] for a typed error instead.
pub fn optimize_battery(
    problem: &BatteryProblem<'_>,
    optimizer: &CrossEntropyOptimizer,
    warm_start: Option<&[f64]>,
    rng: &mut impl Rng,
) -> (Vec<Kwh>, CeSolution) {
    try_optimize_battery(problem, optimizer, warm_start, rng)
        .unwrap_or_else(|err| panic!("{err}"))
}

/// Fallible variant of [`optimize_battery`]: NaN objectives and
/// mis-dimensioned warm starts become [`SolverError::Numeric`] so callers
/// can retry or fall back.
///
/// # Errors
///
/// Returns [`SolverError::Numeric`] when `warm_start` has the wrong
/// dimension or the cost model produces NaN for a feasible trajectory.
pub fn try_optimize_battery(
    problem: &BatteryProblem<'_>,
    optimizer: &CrossEntropyOptimizer,
    warm_start: Option<&[f64]>,
    rng: &mut impl Rng,
) -> Result<(Vec<Kwh>, CeSolution), SolverError> {
    try_optimize_battery_budgeted(problem, optimizer, warm_start, rng, None)
}

/// Like [`try_optimize_battery`], but the cross-entropy loop is watched by
/// an optional running [`BudgetClock`]; a breach surfaces via
/// [`CeSolution::budget_breached`] with the best point sampled so far.
///
/// # Errors
///
/// Same as [`try_optimize_battery`].
pub fn try_optimize_battery_budgeted(
    problem: &BatteryProblem<'_>,
    optimizer: &CrossEntropyOptimizer,
    warm_start: Option<&[f64]>,
    rng: &mut impl Rng,
    clock: Option<&BudgetClock>,
) -> Result<(Vec<Kwh>, CeSolution), SolverError> {
    optimize_battery_with(problem, warm_start, |bounds, init| {
        optimizer.try_minimize_budgeted(|x| problem.objective(x), bounds, init, rng, clock)
    })
}

/// Like [`try_optimize_battery_budgeted`], but the cross-entropy
/// population/elite buffers live in a caller-provided [`CeWorkspace`] and
/// are reused across solves — the best-response inner loop runs one battery
/// step per alternation and reuses one workspace for all of them.
/// Bit-identical to [`try_optimize_battery_budgeted`] under the same seed.
///
/// # Errors
///
/// Same as [`try_optimize_battery`].
pub fn try_optimize_battery_budgeted_in(
    problem: &BatteryProblem<'_>,
    optimizer: &CrossEntropyOptimizer,
    warm_start: Option<&[f64]>,
    rng: &mut impl Rng,
    clock: Option<&BudgetClock>,
    ws: &mut crate::CeWorkspace,
) -> Result<(Vec<Kwh>, CeSolution), SolverError> {
    optimize_battery_with(problem, warm_start, |bounds, init| {
        optimizer.try_minimize_budgeted_in(|x| problem.objective(x), bounds, init, rng, clock, ws)
    })
}

/// Like [`try_optimize_battery_budgeted`], but the cross-entropy sample
/// evaluations fan out over `parallelism` worker threads via
/// [`CrossEntropyOptimizer::try_minimize_budgeted_par`] — bit-identical to
/// the sequential variant under the same seed at any thread count.
///
/// # Errors
///
/// Same as [`try_optimize_battery`].
pub fn try_optimize_battery_budgeted_par(
    problem: &BatteryProblem<'_>,
    optimizer: &CrossEntropyOptimizer,
    warm_start: Option<&[f64]>,
    rng: &mut impl Rng,
    clock: Option<&BudgetClock>,
    parallelism: &nms_par::Parallelism,
) -> Result<(Vec<Kwh>, CeSolution), SolverError> {
    optimize_battery_with(problem, warm_start, |bounds, init| {
        optimizer.try_minimize_budgeted_par(
            |x: &[f64]| problem.objective(x),
            bounds,
            init,
            rng,
            clock,
            parallelism,
        )
    })
}

/// The shared shell around the CE step: the unusable-battery degenerate
/// case, warm-start validation, and the never-worse-than-warm/idle floor.
fn optimize_battery_with(
    problem: &BatteryProblem<'_>,
    warm_start: Option<&[f64]>,
    solve: impl FnOnce(&[(f64, f64)], &[f64]) -> Result<CeSolution, SolverError>,
) -> Result<(Vec<Kwh>, CeSolution), SolverError> {
    if !problem.battery().is_usable() {
        let interior = problem.idle_interior();
        let solution = CeSolution {
            objective: problem.objective(&interior),
            point: interior.clone(),
            iterations: 0,
            converged: true,
            budget_breached: false,
            std_history: Vec::new(),
        };
        return Ok((problem.full_trajectory(&interior), solution));
    }
    let capacity = problem.battery().capacity().value();
    let bounds = vec![(0.0, capacity); problem.dim()];
    let init = match warm_start {
        Some(point) => {
            if point.len() != problem.dim() {
                return Err(SolverError::Numeric {
                    detail: format!(
                        "warm start dimension: {} vs {}",
                        point.len(),
                        problem.dim()
                    ),
                });
            }
            point.to_vec()
        }
        None => problem.idle_interior(),
    };
    let mut solution = solve(&bounds, &init)?;
    // Never return something worse than the warm start or doing nothing.
    for candidate in [
        Some(init),
        warm_start.map(|p| p.to_vec()),
        Some(problem.idle_interior()),
    ]
    .into_iter()
    .flatten()
    {
        let cost = problem.objective(&candidate);
        if cost < solution.objective {
            solution.point = candidate;
            solution.objective = cost;
        }
    }
    Ok((problem.full_trajectory(&solution.point), solution))
}

/// Deterministic baseline: cyclic projected coordinate descent with a
/// grid-plus-golden-section line search per coordinate.
///
/// Returns the full `b⁰..b^H` trajectory. Used in the ablation bench
/// comparing against [`optimize_battery`].
pub fn coordinate_descent_battery(problem: &BatteryProblem<'_>, sweeps: usize) -> Vec<Kwh> {
    if !problem.battery().is_usable() {
        return problem.full_trajectory(&problem.idle_interior());
    }
    let capacity = problem.battery().capacity().value();
    let mut interior = problem.idle_interior();
    const GRID: usize = 16;
    for _ in 0..sweeps {
        for k in 0..interior.len() {
            let evaluate = |value: f64, interior: &mut Vec<f64>| {
                let saved = interior[k];
                interior[k] = value;
                let cost = problem.objective(interior);
                interior[k] = saved;
                cost
            };
            // Coarse grid.
            let mut best_value = interior[k];
            let mut best_cost = problem.objective(&interior);
            for g in 0..=GRID {
                let candidate = capacity * g as f64 / GRID as f64;
                let cost = evaluate(candidate, &mut interior);
                if cost < best_cost {
                    best_cost = cost;
                    best_value = candidate;
                }
            }
            // Golden-section refine around the best grid cell.
            let step = capacity / GRID as f64;
            let (mut lo, mut hi) = (
                (best_value - step).max(0.0),
                (best_value + step).min(capacity),
            );
            let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
            for _ in 0..24 {
                let m1 = hi - phi * (hi - lo);
                let m2 = lo + phi * (hi - lo);
                if evaluate(m1, &mut interior) <= evaluate(m2, &mut interior) {
                    hi = m2;
                } else {
                    lo = m1;
                }
            }
            let refined = (lo + hi) / 2.0;
            if evaluate(refined, &mut interior) < best_cost {
                best_value = refined;
            }
            interior[k] = best_value;
        }
    }
    problem.full_trajectory(&interior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CeConfig;
    use nms_pricing::{NetMeteringTariff, PriceSignal};
    use nms_types::Horizon;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    struct Fixture {
        prices: PriceSignal,
        load: TimeSeries<f64>,
        generation: TimeSeries<f64>,
        others: TimeSeries<f64>,
        battery: Battery,
    }

    impl Fixture {
        /// Cheap valley overnight, expensive evening, flat 1 kWh load.
        fn arbitrage() -> Self {
            let prices = PriceSignal::new(TimeSeries::from_fn(day(), |h| {
                if (18..22).contains(&h) {
                    0.5
                } else if h < 6 {
                    0.02
                } else {
                    0.1
                }
            }))
            .unwrap();
            Self {
                prices,
                load: TimeSeries::filled(day(), 1.0),
                generation: TimeSeries::filled(day(), 0.0),
                others: TimeSeries::filled(day(), 20.0),
                battery: Battery::new(Kwh::new(5.0), Kwh::ZERO).unwrap(),
            }
        }

        fn problem(&self) -> BatteryProblem<'_> {
            BatteryProblem::new(
                &self.battery,
                &self.load,
                &self.generation,
                &self.others,
                CostModel::new(&self.prices, NetMeteringTariff::default()),
            )
        }
    }

    #[test]
    fn idle_trajectory_has_load_equal_trading() {
        let fixture = Fixture::arbitrage();
        let problem = fixture.problem();
        let trading = problem.trading(&problem.idle_interior());
        for h in 0..24 {
            assert!((trading[h] - fixture.load[h]).abs() < 1e-12);
        }
    }

    #[test]
    fn ce_beats_idle_on_arbitrage() {
        let fixture = Fixture::arbitrage();
        let problem = fixture.problem();
        let optimizer = CrossEntropyOptimizer::new(CeConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (trajectory, solution) = optimize_battery(&problem, &optimizer, None, &mut rng);
        let idle_cost = problem.objective(&problem.idle_interior());
        assert!(
            solution.objective < idle_cost - 1e-6,
            "CE {} vs idle {idle_cost}",
            solution.objective
        );
        // The trajectory is feasible for the battery.
        fixture.battery.validate_trajectory(&trajectory).unwrap();
    }

    #[test]
    fn ce_never_worse_than_idle() {
        let fixture = Fixture::arbitrage();
        let problem = fixture.problem();
        // A single-iteration CE might sample only bad points; the fallback
        // must kick in.
        let optimizer = CrossEntropyOptimizer::new(CeConfig {
            samples: 2,
            max_iters: 1,
            ..CeConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (_, solution) = optimize_battery(&problem, &optimizer, None, &mut rng);
        let idle_cost = problem.objective(&problem.idle_interior());
        assert!(solution.objective <= idle_cost + 1e-12);
    }

    #[test]
    fn unusable_battery_short_circuits() {
        let fixture = Fixture {
            battery: Battery::none(),
            ..Fixture::arbitrage()
        };
        let problem = fixture.problem();
        let optimizer = CrossEntropyOptimizer::default();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (trajectory, solution) = optimize_battery(&problem, &optimizer, None, &mut rng);
        assert_eq!(solution.iterations, 0);
        assert!(trajectory.iter().all(|&b| b == Kwh::ZERO));
    }

    #[test]
    fn coordinate_descent_beats_idle_on_arbitrage() {
        let fixture = Fixture::arbitrage();
        let problem = fixture.problem();
        let trajectory = coordinate_descent_battery(&problem, 3);
        fixture.battery.validate_trajectory(&trajectory).unwrap();
        let interior: Vec<f64> = trajectory[1..].iter().map(|b| b.value()).collect();
        let idle_cost = problem.objective(&problem.idle_interior());
        assert!(problem.objective(&interior) < idle_cost - 1e-6);
    }

    #[test]
    fn battery_charges_cheap_discharges_expensive() {
        let fixture = Fixture::arbitrage();
        let problem = fixture.problem();
        let optimizer = CrossEntropyOptimizer::new(CeConfig {
            samples: 128,
            max_iters: 80,
            ..CeConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (trajectory, _) = optimize_battery(&problem, &optimizer, None, &mut rng);
        // State of charge at 06:00 should exceed state at 22:00: energy is
        // banked overnight and spent through the evening peak.
        assert!(
            trajectory[6].value() > trajectory[22].value() + 0.5,
            "b(06)={} b(22)={}",
            trajectory[6],
            trajectory[22]
        );
    }

    #[test]
    fn throughput_penalty_discourages_fast_swings() {
        let mut fixture = Fixture::arbitrage();
        fixture.battery = Battery::new(Kwh::new(5.0), Kwh::ZERO)
            .unwrap()
            .with_throughput_limit(Kwh::new(0.5))
            .unwrap();
        let problem = fixture.problem();
        // A trajectory that jumps the full capacity in one slot gets a huge
        // penalty relative to a slow ramp.
        let mut fast = problem.idle_interior();
        fast[0] = 5.0;
        let mut slow = problem.idle_interior();
        slow[0] = 0.5;
        assert!(problem.objective(&fast) > problem.objective(&slow) + 100.0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn prop_full_trajectory_is_always_feasible(
            capacity in 0.5_f64..10.0,
            limit_fraction in 0.05_f64..1.0,
            raw in proptest::collection::vec(-5.0_f64..15.0, 24),
        ) {
            let battery = Battery::new(Kwh::new(capacity), Kwh::new(capacity / 2.0))
                .unwrap()
                .with_throughput_limit(Kwh::new(capacity * limit_fraction))
                .unwrap();
            let load = TimeSeries::filled(Horizon::hourly_day(), 1.0);
            let generation = TimeSeries::filled(Horizon::hourly_day(), 0.0);
            let others = TimeSeries::filled(Horizon::hourly_day(), 5.0);
            let prices = PriceSignal::flat(Horizon::hourly_day(), 0.1).unwrap();
            let problem = BatteryProblem::new(
                &battery,
                &load,
                &generation,
                &others,
                CostModel::new(&prices, NetMeteringTariff::default()),
            );
            // Arbitrary (even wildly infeasible) interiors project onto a
            // hard-feasible trajectory.
            let trajectory = problem.full_trajectory(&raw);
            proptest::prop_assert!(battery.validate_trajectory(&trajectory).is_ok());
        }
    }

    #[test]
    fn pv_surplus_is_stored_or_sold() {
        // Big PV at noon, no load: optimizer should not do worse than
        // selling it all immediately.
        let prices = PriceSignal::flat(day(), 0.1).unwrap();
        let load = TimeSeries::filled(day(), 0.0);
        let generation = TimeSeries::from_fn(day(), |h| if h == 12 { 4.0 } else { 0.0 });
        let others = TimeSeries::filled(day(), 10.0);
        let battery = Battery::new(Kwh::new(5.0), Kwh::ZERO).unwrap();
        let problem = BatteryProblem::new(
            &battery,
            &load,
            &generation,
            &others,
            CostModel::new(&prices, NetMeteringTariff::default()),
        );
        let optimizer = CrossEntropyOptimizer::default();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let (_, solution) = optimize_battery(&problem, &optimizer, None, &mut rng);
        let sell_now_cost = problem.objective(&problem.idle_interior());
        assert!(solution.objective <= sell_now_cost + 1e-9);
        // Selling yields a credit, so the objective is negative.
        assert!(solution.objective < 0.0);
    }
}
