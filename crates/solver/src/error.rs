//! Solver error type.

use std::error::Error;
use std::fmt;

use nms_smarthome::ScheduleError;
use nms_types::ValidateError;

/// Why a solver run failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolverError {
    /// The DP could not allocate the task energy within the window — the
    /// appliance is infeasible for the horizon (should have been caught by
    /// `Appliance::validate`).
    Infeasible {
        /// Description of the infeasible subproblem.
        detail: String,
    },
    /// A produced schedule failed feasibility validation; indicates a bug in
    /// a solver or a numerically hostile input.
    Schedule(ScheduleError),
    /// Invalid solver configuration.
    Config(ValidateError),
    /// A numerical failure inside an optimizer: a NaN objective value,
    /// invalid bounds, or a mis-dimensioned problem.
    Numeric {
        /// Description of the numerical failure.
        detail: String,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible { detail } => write!(f, "infeasible subproblem: {detail}"),
            Self::Schedule(err) => write!(f, "solver produced an infeasible schedule: {err}"),
            Self::Config(err) => write!(f, "invalid solver configuration: {err}"),
            Self::Numeric { detail } => write!(f, "numeric failure: {detail}"),
        }
    }
}

impl Error for SolverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Schedule(err) => Some(err),
            Self::Config(err) => Some(err),
            Self::Infeasible { .. } | Self::Numeric { .. } => None,
        }
    }
}

impl From<ScheduleError> for SolverError {
    fn from(err: ScheduleError) -> Self {
        Self::Schedule(err)
    }
}

impl From<ValidateError> for SolverError {
    fn from(err: ValidateError) -> Self {
        Self::Config(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let err = SolverError::Infeasible {
            detail: "window too small".into(),
        };
        assert!(err.to_string().contains("window too small"));
        let err: SolverError = ValidateError::new("bad K").into();
        assert!(err.to_string().contains("bad K"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SolverError>();
    }
}
