//! The dynamic-programming appliance scheduler of \[6\] (Algorithm 1, line 4).
//!
//! The task energy `E_m` is quantized into `R` equal quanta `q = E_m / R`;
//! the DP allocates an integer number of quanta to each slot of the
//! `[α_m, β_m]` window, bounded per slot by the appliance's maximum power
//! level (partial execution `e_m^h < Δt` covers the fractional quantum).
//! With per-slot additive costs the DP is exact at quantum granularity:
//!
//! ```text
//! f(h, r) = min_{0 ≤ j ≤ J_h} f(h−1, r−j) + cost(h, j·q)
//! ```

use nms_smarthome::{Appliance, ApplianceSchedule};
use nms_types::{Horizon, TimeSeries};

use crate::SolverError;

/// Reusable scratch buffers for [`DpScheduler`] solves.
///
/// A DP solve needs the value tables `dp`/`next`, the per-slot level costs,
/// the window slot list, and the back-pointer table. Allocating them fresh
/// per solve dominates the cost of small instances, so callers that solve
/// many appliances (the best-response inner loop) hold one workspace and
/// pass it to [`DpScheduler::schedule_in`]; steady-state reuse then
/// allocates nothing. The buffers carry no state between solves — every
/// solve fully reinitializes the prefix it reads — so reuse is always
/// bit-identical to fresh allocation (see `tests/solver_workspace.rs`).
#[derive(Debug, Clone, Default)]
pub struct DpWorkspace {
    /// `dp[r]` = best cost allocating `r` quanta among processed slots.
    dp: Vec<f64>,
    /// Next row of the value table (swapped with `dp` per window slot).
    next: Vec<f64>,
    /// Cost of placing `j` quanta into the current slot.
    level_costs: Vec<f64>,
    /// Feasible slots of the `[α_m, β_m]` window.
    window: Vec<usize>,
    /// Back-pointers, flattened row-major: `choices[w * (quanta + 1) + r]`
    /// is the quanta placed in window slot `w` on the best path to `r`.
    choices: Vec<u32>,
}

/// Exact DP scheduling of one appliance against an arbitrary per-slot cost.
///
/// `resolution` controls how many quanta fit in one full-power slot: higher
/// values track convex costs more closely at `O(H · R · J)` cost.
///
/// # Examples
///
/// ```
/// use nms_smarthome::{Appliance, ApplianceKind, PowerLevels, TaskSpec};
/// use nms_solver::DpScheduler;
/// use nms_types::{ApplianceId, Horizon, Kw, Kwh};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let horizon = Horizon::hourly_day();
/// let ev = Appliance::new(
///     ApplianceId::new(0),
///     ApplianceKind::ElectricVehicle,
///     PowerLevels::stepped(Kw::new(3.0), 3)?,
///     TaskSpec::new(Kwh::new(6.0), 0, 7)?,
/// );
/// // Cheap power before 04:00.
/// let schedule = DpScheduler::default().schedule(&ev, horizon, |slot, energy| {
///     let price = if slot < 4 { 0.05 } else { 0.25 };
///     price * energy
/// })?;
/// // All energy lands in the cheap window.
/// let cheap: f64 = (0..4).map(|h| schedule.at(h).value()).sum();
/// assert!((cheap - 6.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DpScheduler {
    resolution: usize,
}

impl DpScheduler {
    /// Creates a scheduler whose quantum is at most
    /// `max_slot_energy / resolution`.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    pub fn new(resolution: usize) -> Self {
        assert!(resolution > 0, "resolution must be positive");
        Self { resolution }
    }

    /// The configured per-slot quantum resolution.
    #[inline]
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Schedules `appliance` on `horizon`, minimizing
    /// `Σ_h slot_cost(h, energy_h)`.
    ///
    /// The cost closure receives the slot index and the energy (kWh)
    /// tentatively allocated to that slot, and must return the *customer
    /// cost* of that allocation; it is evaluated `O(H·J)` times per quantum
    /// level.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Infeasible`] when the window cannot absorb the
    /// task energy (also caught earlier by `Appliance::validate`), or
    /// [`SolverError::Schedule`] if the reconstructed plan fails validation
    /// (a solver bug or NaN costs).
    pub fn schedule(
        &self,
        appliance: &Appliance,
        horizon: Horizon,
        slot_cost: impl FnMut(usize, f64) -> f64,
    ) -> Result<ApplianceSchedule, SolverError> {
        self.schedule_in(appliance, horizon, &mut DpWorkspace::default(), slot_cost)
    }

    /// [`DpScheduler::schedule`] with caller-provided scratch buffers: the
    /// DP tables live in `ws` and are reused across solves, so a warm
    /// workspace makes the solve allocation-free up to the returned
    /// schedule. Bit-identical to [`DpScheduler::schedule`].
    ///
    /// # Errors
    ///
    /// Same as [`DpScheduler::schedule`].
    pub fn schedule_in(
        &self,
        appliance: &Appliance,
        horizon: Horizon,
        ws: &mut DpWorkspace,
        slot_cost: impl FnMut(usize, f64) -> f64,
    ) -> Result<ApplianceSchedule, SolverError> {
        let mut allocation = TimeSeries::filled(horizon, 0.0);
        self.schedule_into(appliance, horizon, ws, &mut allocation, slot_cost)?;
        ApplianceSchedule::new(appliance, horizon, allocation).map_err(Into::into)
    }

    /// The allocation-free core: writes the optimal per-slot energies into
    /// `out` (fully overwritten) instead of building an
    /// [`ApplianceSchedule`]. The allocation is feasible by construction
    /// (window, per-slot cap, and total energy at quantum granularity);
    /// validation happens when the caller wraps it in a schedule.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Infeasible`] when the window cannot absorb
    /// the task energy.
    ///
    /// # Panics
    ///
    /// Panics when `out` does not span `horizon`.
    pub fn schedule_into(
        &self,
        appliance: &Appliance,
        horizon: Horizon,
        ws: &mut DpWorkspace,
        out: &mut TimeSeries<f64>,
        mut slot_cost: impl FnMut(usize, f64) -> f64,
    ) -> Result<(), SolverError> {
        let slots = horizon.slots();
        assert_eq!(out.len(), slots, "output series must span the horizon");
        let energy = appliance.task().energy().value();
        if energy <= 1e-12 {
            for value in out.iter_mut() {
                *value = 0.0;
            }
            return Ok(());
        }

        let cap = appliance.max_slot_energy(horizon).value();
        if cap <= 0.0 {
            return Err(SolverError::Infeasible {
                detail: format!("{} has zero per-slot capacity", appliance.id()),
            });
        }
        // Quantize: R quanta of q = E/R each, with q ≤ cap/resolution.
        let quanta = ((energy / (cap / self.resolution as f64)).ceil() as usize).max(1);
        let q = energy / quanta as f64;
        let per_slot_max = ((cap / q) + 1e-9).floor() as usize;

        let DpWorkspace {
            dp,
            next,
            level_costs,
            window,
            choices,
        } = ws;

        window.clear();
        window.extend(
            (appliance.task().start()..=appliance.task().deadline()).filter(|&h| h < slots),
        );
        if window.len() * per_slot_max < quanta {
            return Err(SolverError::Infeasible {
                detail: format!(
                    "{} needs {quanta} quanta but window holds {}",
                    appliance.id(),
                    window.len() * per_slot_max
                ),
            });
        }
        if quanta >= u32::MAX as usize {
            return Err(SolverError::Infeasible {
                detail: format!("{} needs {quanta} quanta (back-pointer overflow)", appliance.id()),
            });
        }

        const INF: f64 = f64::INFINITY;
        let stride = quanta + 1;
        dp.clear();
        dp.resize(stride, INF);
        dp[0] = 0.0;
        choices.clear();
        choices.resize(window.len() * stride, 0);

        for (w, &slot) in window.iter().enumerate() {
            let max_j = per_slot_max.min(quanta);
            // Pre-compute the slot's cost at each quantum level.
            level_costs.clear();
            level_costs.extend((0..=max_j).map(|j| slot_cost(slot, j as f64 * q)));
            next.clear();
            next.resize(stride, INF);
            let row = &mut choices[w * stride..(w + 1) * stride];
            for (r, &cost_so_far) in dp.iter().enumerate() {
                if cost_so_far == INF {
                    continue;
                }
                for (j, &cost) in level_costs.iter().enumerate() {
                    let r2 = r + j;
                    if r2 > quanta {
                        break;
                    }
                    let candidate = cost_so_far + cost;
                    if candidate < next[r2] {
                        next[r2] = candidate;
                        row[r2] = j as u32;
                    }
                }
            }
            std::mem::swap(dp, next);
        }

        if dp[quanta] == INF {
            return Err(SolverError::Infeasible {
                detail: format!("{} DP found no allocation", appliance.id()),
            });
        }

        // Reconstruct.
        for value in out.iter_mut() {
            *value = 0.0;
        }
        let mut r = quanta;
        for w in (0..window.len()).rev() {
            let j = choices[w * stride + r] as usize;
            out[window[w]] = j as f64 * q;
            r -= j;
        }
        debug_assert_eq!(r, 0, "reconstruction must consume all quanta");
        Ok(())
    }
}

impl Default for DpScheduler {
    /// Resolution 4: quanta of a quarter of a full-power slot.
    fn default() -> Self {
        Self::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_smarthome::{ApplianceKind, PowerLevels, TaskSpec};
    use nms_types::{ApplianceId, Kw, Kwh};
    use proptest::prelude::*;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    fn appliance(energy: f64, start: usize, deadline: usize, max_kw: f64) -> Appliance {
        Appliance::new(
            ApplianceId::new(0),
            ApplianceKind::WaterHeater,
            PowerLevels::stepped(Kw::new(max_kw), 2).unwrap(),
            TaskSpec::new(Kwh::new(energy), start, deadline).unwrap(),
        )
    }

    #[test]
    fn fills_cheapest_slots_first() {
        let a = appliance(4.0, 0, 23, 2.0);
        let schedule = DpScheduler::default()
            .schedule(&a, day(), |slot, e| {
                let price = if (10..14).contains(&slot) { 0.01 } else { 1.0 };
                price * e
            })
            .unwrap();
        let cheap: f64 = (10..14).map(|h| schedule.at(h).value()).sum();
        assert!((cheap - 4.0).abs() < 1e-9);
    }

    #[test]
    fn respects_window() {
        let a = appliance(2.0, 5, 8, 2.0);
        let schedule = DpScheduler::default()
            .schedule(&a, day(), |_, e| e) // flat price
            .unwrap();
        for h in 0..24 {
            if !(5..=8).contains(&h) {
                assert_eq!(schedule.at(h), Kwh::ZERO, "slot {h}");
            }
        }
        let total: f64 = (0..24).map(|h| schedule.at(h).value()).sum();
        assert!((total - 2.0).abs() < 1e-9);
    }

    #[test]
    fn convex_cost_spreads_load() {
        // With cost e² per slot and equal prices, the optimum spreads
        // evenly across the window.
        let a = appliance(4.0, 0, 3, 2.0);
        let schedule = DpScheduler::new(8)
            .schedule(&a, day(), |_, e| e * e)
            .unwrap();
        for h in 0..4 {
            assert!(
                (schedule.at(h).value() - 1.0).abs() < 0.26,
                "slot {h}: {}",
                schedule.at(h)
            );
        }
    }

    #[test]
    fn zero_energy_task_yields_zero_schedule() {
        let a = appliance(0.0, 0, 23, 2.0);
        let schedule = DpScheduler::default()
            .schedule(&a, day(), |_, e| e)
            .unwrap();
        assert!((0..24).all(|h| schedule.at(h) == Kwh::ZERO));
    }

    #[test]
    fn tight_window_uses_full_power() {
        // 4 kWh in exactly 2 slots at 2 kW: both slots at capacity.
        let a = appliance(4.0, 10, 11, 2.0);
        let schedule = DpScheduler::default()
            .schedule(&a, day(), |_, e| e * 100.0)
            .unwrap();
        assert!((schedule.at(10).value() - 2.0).abs() < 1e-9);
        assert!((schedule.at(11).value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn higher_resolution_never_hurts() {
        let a = appliance(3.0, 0, 5, 2.0);
        let cost = |slot: usize, e: f64| (1.0 + slot as f64 * 0.1) * e * e;
        let coarse = DpScheduler::new(2).schedule(&a, day(), cost).unwrap();
        let fine = DpScheduler::new(16).schedule(&a, day(), cost).unwrap();
        let total =
            |s: &ApplianceSchedule| -> f64 { (0..24).map(|h| cost(h, s.at(h).value())).sum() };
        assert!(total(&fine) <= total(&coarse) + 1e-9);
    }

    #[test]
    fn attack_scenario_shifts_load_into_zero_price_window() {
        // The paper's Fig 5 mechanism at appliance scale: zeroed prices at
        // 16:00–17:00 suck in all flexible load.
        let a = appliance(4.0, 8, 20, 2.0);
        let schedule = DpScheduler::default()
            .schedule(&a, day(), |slot, e| {
                let price = if slot == 16 || slot == 17 { 0.0 } else { 0.2 };
                price * e
            })
            .unwrap();
        let in_window = schedule.at(16).value() + schedule.at(17).value();
        assert!((in_window - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn zero_resolution_panics() {
        let _ = DpScheduler::new(0);
    }

    #[test]
    fn reused_workspace_is_bit_identical_to_fresh() {
        // Solve a mix of shapes (different windows, energies, and therefore
        // quanta counts) through ONE workspace and compare each result
        // against a fresh-allocation solve of the same instance.
        let shapes = [
            (4.0, 0, 23, 2.0),
            (1.0, 17, 23, 1.0),
            (6.0, 2, 9, 3.0),
            (0.0, 0, 23, 2.0),
            (2.5, 5, 8, 2.0),
        ];
        let mut ws = DpWorkspace::default();
        let dp = DpScheduler::default();
        let cost = |slot: usize, e: f64| (0.05 + 0.01 * slot as f64) * e + 0.3 * e * e;
        for &(energy, start, deadline, max_kw) in &shapes {
            let a = appliance(energy, start, deadline, max_kw);
            let reused = dp.schedule_in(&a, day(), &mut ws, cost).unwrap();
            let fresh = dp.schedule(&a, day(), cost).unwrap();
            for h in 0..24 {
                assert_eq!(
                    reused.at(h).value().to_bits(),
                    fresh.at(h).value().to_bits(),
                    "slot {h} of {energy} kWh in {start}..={deadline}"
                );
            }
        }
    }

    /// Exhaustive oracle: enumerate every quantized allocation of the task
    /// energy over the window and return the minimum cost.
    fn brute_force_optimum(
        energy: f64,
        window: std::ops::RangeInclusive<usize>,
        per_slot_cap: f64,
        quanta: usize,
        cost: &dyn Fn(usize, f64) -> f64,
    ) -> f64 {
        let slots: Vec<usize> = window.collect();
        let q = energy / quanta as f64;
        let per_slot_max = ((per_slot_cap / q) + 1e-9).floor() as usize;
        fn recurse(
            slots: &[usize],
            remaining: usize,
            per_slot_max: usize,
            q: f64,
            cost: &dyn Fn(usize, f64) -> f64,
        ) -> f64 {
            match slots.split_first() {
                None => {
                    if remaining == 0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                }
                Some((&slot, rest)) => {
                    let mut best = f64::INFINITY;
                    for j in 0..=per_slot_max.min(remaining) {
                        let tail = recurse(rest, remaining - j, per_slot_max, q, cost);
                        best = best.min(cost(slot, j as f64 * q) + tail);
                    }
                    best
                }
            }
        }
        recurse(&slots, quanta, per_slot_max, q, cost)
    }

    #[test]
    fn dp_matches_brute_force_on_small_instances() {
        // Non-convex, slot-dependent cost: the DP must still be exact at
        // quantum granularity.
        let cost = |slot: usize, e: f64| -> f64 {
            let price = [0.4, 0.1, 0.9, 0.2, 0.6, 0.3][slot % 6];
            price * e + if e > 1.0 { 0.5 } else { 0.0 } // fixed surcharge kink
        };
        for (energy, start, deadline, resolution) in
            [(2.0, 0, 4, 2), (3.0, 1, 5, 2), (1.5, 0, 3, 4)]
        {
            let appliance = Appliance::new(
                ApplianceId::new(0),
                ApplianceKind::Dishwasher,
                PowerLevels::stepped(Kw::new(2.0), 2).unwrap(),
                TaskSpec::new(Kwh::new(energy), start, deadline).unwrap(),
            );
            let schedule = DpScheduler::new(resolution)
                .schedule(&appliance, day(), cost)
                .unwrap();
            let dp_cost: f64 = (0..24).map(|h| cost(h, schedule.at(h).value())).sum();

            // Mirror the DP's quantization for the oracle.
            let cap = 2.0;
            let quanta = ((energy / (cap / resolution as f64)).ceil() as usize).max(1);
            let oracle = brute_force_optimum(energy, start..=deadline, cap, quanta, &cost);
            assert!(
                (dp_cost - oracle).abs() < 1e-9,
                "E={energy} window {start}..={deadline}: dp {dp_cost} vs oracle {oracle}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_schedule_always_feasible(
            energy in 0.1_f64..6.0,
            start in 0_usize..12,
            len in 3_usize..12,
            price_seed in 0_u64..100,
        ) {
            let deadline = (start + len).min(23);
            let max_kw = 2.0;
            let window_cap = max_kw * (deadline - start + 1) as f64;
            let energy = energy.min(window_cap * 0.9);
            let a = appliance(energy, start, deadline, max_kw);
            // Pseudo-random but deterministic prices.
            let price = move |slot: usize| {
                let x = (slot as u64).wrapping_mul(6364136223846793005).wrapping_add(price_seed);
                0.01 + (x % 100) as f64 / 100.0
            };
            let schedule = DpScheduler::default()
                .schedule(&a, day(), |slot, e| price(slot) * e)
                .unwrap();
            // ApplianceSchedule::new inside schedule() already validated
            // feasibility; check totals here as a belt-and-braces.
            let total: f64 = (0..24).map(|h| schedule.at(h).value()).sum();
            prop_assert!((total - energy).abs() < 1e-6);
        }
    }
}
