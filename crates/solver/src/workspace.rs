//! The per-worker scratch arena for best-response solves (DESIGN.md §11).
//!
//! One best response alternates DP appliance scheduling with a CE battery
//! step, `inner_iters` times, inside Jacobi rounds × customers × days ×
//! sweep points. Every buffer those kernels touch per iteration lives here,
//! so a warm [`ResponseWorkspace`] makes the steady-state hot path
//! allocation-free: the DP value/back-pointer tables ([`DpWorkspace`]), the
//! CE population ([`CeWorkspace`]), the hoisted per-slot billing table
//! ([`HoistedCostTable`]), and the response-level series buffers.
//!
//! # Lifecycle
//!
//! Hold one workspace per thread of execution and pass it to
//! [`best_response_in`](crate::best_response_in) for every solve: the
//! sequential Gauss–Seidel game loop keeps a single workspace across all
//! customers and rounds; parallel Jacobi rounds give each worker its own via
//! [`nms_par::par_map_scratch_recorded`]. Buffers carry no state between
//! solves — every solve fully reinitializes the prefix it reads — so reuse
//! is bit-identical to fresh allocation (`tests/solver_workspace.rs` pins
//! this byte-for-byte).

use nms_pricing::HoistedCostTable;
use nms_types::{Horizon, Kwh, TimeSeries};

use crate::ce::CeWorkspace;
use crate::dp::DpWorkspace;

/// Reusable scratch arena for [`best_response_in`](crate::best_response_in).
///
/// See the [module docs](self) for the lifecycle contract. A default-built
/// workspace is empty; buffers grow to the largest customer seen and stay
/// warm from then on.
#[derive(Debug, Clone, Default)]
pub struct ResponseWorkspace {
    /// DP value/back-pointer tables.
    pub(crate) dp: DpWorkspace,
    /// CE population/elite buffers for the battery step.
    pub(crate) ce: CeWorkspace,
    /// Per-slot billing terms hoisted once per response.
    pub(crate) table: HoistedCostTable,
    /// Fixed per-slot trading base seen by the appliance under reschedule.
    pub(crate) base: Vec<f64>,
    /// Battery contribution to own trading (`b^{h+1} − b^h`).
    pub(crate) battery_delta: Vec<f64>,
    /// The customer's PV generation per slot.
    pub(crate) generation: Option<TimeSeries<f64>>,
    /// Total appliance + base load per slot (battery-step input).
    pub(crate) load: Option<TimeSeries<f64>>,
    /// Per-appliance energy series under coordinate descent.
    pub(crate) energies: Vec<TimeSeries<f64>>,
    /// The battery state-of-charge trajectory `b⁰..b^H`.
    pub(crate) battery: Vec<Kwh>,
    /// Previous-trajectory warm start (interior `b¹..b^H`).
    pub(crate) warm_prev: Vec<f64>,
    /// Coordinate-descent sweep candidate (interior `b¹..b^H`).
    pub(crate) swept: Vec<f64>,
}

impl ResponseWorkspace {
    /// An empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reuses `slot`'s series when it already spans `horizon`, otherwise
/// replaces it with a zero-filled one of the right length.
pub(crate) fn series_for<'a>(
    slot: &'a mut Option<TimeSeries<f64>>,
    horizon: Horizon,
) -> &'a mut TimeSeries<f64> {
    match slot {
        Some(series) if series.horizon() == horizon => {}
        _ => *slot = Some(TimeSeries::filled(horizon, 0.0)),
    }
    slot.as_mut().expect("series populated above")
}
