//! Structure-of-arrays slabs for batched best-response rounds
//! (DESIGN.md §15).
//!
//! At paper scale (N = 500) one Jacobi/Gauss–Seidel round touches every
//! customer's trading series, the running community total, and a fresh
//! "aggregate of the others" per customer. The `TimeSeries`-per-customer
//! representation scatters those across N separate heap allocations and
//! re-allocates two more per response (`total.sub`, `others.add`). A
//! [`BatchResponseWorkspace`] instead lays the whole round out as flat
//! `f64` slabs:
//!
//! ```text
//!            slot →  0 ............ H-1
//! tradings  lane 0 [ y_0^0 ...... y_0^H )   customer 0, contiguous
//!           lane 1 [ y_1^0 ...... y_1^H )   customer 1, contiguous
//!           ...
//! prices    lane n [ p_n^0 ...... p_n^H )   customer n's believed price
//! total            [ Σ_n y_n^h          )   one lane
//! others           [ total − lane i     )   scratch, rewritten per customer
//! ```
//!
//! Each lane is one customer's series in slot order (the "column" of the
//! slot × customer matrix), so the round's inner loops — others = total −
//! lane, total = others + response, the residual max, and the end-of-round
//! total rebuild — are tight loops over contiguous slices the compiler can
//! vectorize. All slabs are bump-allocated once per solve by
//! [`BatchResponseWorkspace::begin`] and reused across rounds.
//!
//! **Bit-identity.** Every kernel performs the same floating-point
//! operations in the same order as the series code it replaces:
//! subtraction/addition per slot, `f64::max` folds seeded at `0.0`, and the
//! total rebuilt by accumulating customers in index order (the exact fold
//! `TimeSeries::from_fn(h, |h| lanes.map(|l| l[h]).sum())` performs).
//! `tests/solver_workspace.rs` pins the engine's batched rounds against the
//! hand-rolled `TimeSeries` + [`best_response_reference`] loop byte for
//! byte.
//!
//! [`best_response_reference`]: crate::best_response_reference

use nms_pricing::PriceSignal;

/// Per-solve structure-of-arrays arena for the game engine's batched
/// rounds: every customer's trading and believed-price series as contiguous
/// `f64` lanes, plus the community total and a per-customer others scratch
/// lane. See the [module docs](self) for layout and the bit-identity
/// contract.
#[derive(Debug, Clone, Default)]
pub struct BatchResponseWorkspace {
    customers: usize,
    slots: usize,
    /// `customers × slots`, lane-per-customer: `tradings[i*slots..][..slots]`
    /// is customer `i`'s committed trading series.
    tradings: Vec<f64>,
    /// `customers × slots`: the price signal each customer's meter reports.
    prices: Vec<f64>,
    /// `slots`: the running community total `Σ_n y_n^h`.
    total: Vec<f64>,
    /// `slots`: the aggregate of the others for the customer under solve.
    others: Vec<f64>,
}

impl BatchResponseWorkspace {
    /// An empty workspace; slabs are grown by [`BatchResponseWorkspace::begin`].
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)initializes the slabs for a solve over `customers` lanes of
    /// `slots` values: all tradings and the total start at zero (the game's
    /// cold start). Buffers are grown once and reused on later solves of
    /// the same shape — the steady state allocates nothing.
    pub fn begin(&mut self, customers: usize, slots: usize) {
        self.customers = customers;
        self.slots = slots;
        self.tradings.clear();
        self.tradings.resize(customers * slots, 0.0);
        self.prices.clear();
        self.prices.resize(customers * slots, 0.0);
        self.total.clear();
        self.total.resize(slots, 0.0);
        self.others.clear();
        self.others.resize(slots, 0.0);
    }

    /// Customer lanes in the current solve.
    #[inline]
    pub fn customers(&self) -> usize {
        self.customers
    }

    /// Slots per lane in the current solve.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Customer `index`'s committed trading lane.
    #[inline]
    pub fn trading_lane(&self, index: usize) -> &[f64] {
        &self.tradings[index * self.slots..(index + 1) * self.slots]
    }

    /// The running community total `Σ_n y_n^h`.
    #[inline]
    pub fn total(&self) -> &[f64] {
        &self.total
    }

    /// Copies customer `index`'s believed price signal into its price lane.
    ///
    /// # Panics
    ///
    /// Panics if the signal's slot count differs from the workspace's.
    pub fn set_price_lane(&mut self, index: usize, signal: &PriceSignal) {
        assert_eq!(signal.len(), self.slots, "price/slots");
        let lane = &mut self.prices[index * self.slots..(index + 1) * self.slots];
        for (slot, value) in lane.iter_mut().enumerate() {
            *value = signal.at(slot).value();
        }
    }

    /// Customer `index`'s believed price lane.
    #[inline]
    pub fn price_lane(&self, index: usize) -> &[f64] {
        &self.prices[index * self.slots..(index + 1) * self.slots]
    }

    /// Fills the others scratch lane with `total − lane(index)` (exactly
    /// the per-slot subtraction `total.sub(&tradings[index])` performed) and
    /// returns it. Valid until the next `fill_others`/`begin` call.
    pub fn fill_others(&mut self, index: usize) -> &[f64] {
        let lane = &self.tradings[index * self.slots..(index + 1) * self.slots];
        for ((out, &total), &own) in self.others.iter_mut().zip(&self.total).zip(lane) {
            *out = total - own;
        }
        &self.others
    }

    /// The others scratch lane as last filled.
    #[inline]
    pub fn others(&self) -> &[f64] {
        &self.others
    }

    /// Writes `total − lane(index)` into `out` without touching the shared
    /// scratch lane — the form parallel Jacobi workers use against the
    /// immutable snapshot (`&self`), each into its own per-worker buffer.
    pub fn fill_others_into(&self, index: usize, out: &mut Vec<f64>) {
        let lane = &self.tradings[index * self.slots..(index + 1) * self.slots];
        out.clear();
        out.extend(self.total.iter().zip(lane).map(|(&total, &own)| total - own));
    }

    /// Largest absolute per-slot difference between `response` and customer
    /// `index`'s current lane — the same `fold(0.0, f64::max)` the series
    /// residual used.
    pub fn max_abs_delta(&self, index: usize, response: &[f64]) -> f64 {
        let lane = &self.tradings[index * self.slots..(index + 1) * self.slots];
        response
            .iter()
            .zip(lane)
            .map(|(&new, &old)| (new - old).abs())
            .fold(0.0, f64::max)
    }

    /// Gauss–Seidel commit: `total = others + response` (per-slot, exactly
    /// the `others.add(response)` order) and the lane overwritten, so the
    /// next customer sees the freshest totals. Call with the others lane
    /// still holding [`BatchResponseWorkspace::fill_others`]'s result for
    /// the same `index`.
    ///
    /// # Panics
    ///
    /// Panics if `response` has the wrong slot count.
    pub fn commit_gauss_seidel(&mut self, index: usize, response: &[f64]) {
        assert_eq!(response.len(), self.slots, "response/slots");
        let lane = &mut self.tradings[index * self.slots..(index + 1) * self.slots];
        for (((total, &others), &new), own) in self
            .total
            .iter_mut()
            .zip(&self.others)
            .zip(response)
            .zip(lane)
        {
            *total = others + new;
            *own = new;
        }
    }

    /// Jacobi commit: overwrites customer `index`'s lane without touching
    /// the total (every customer in the round responded to the same
    /// snapshot; rebuild the total once afterwards with
    /// [`BatchResponseWorkspace::rebuild_total`]).
    ///
    /// # Panics
    ///
    /// Panics if `response` has the wrong slot count.
    pub fn set_lane(&mut self, index: usize, response: &[f64]) {
        assert_eq!(response.len(), self.slots, "response/slots");
        self.tradings[index * self.slots..(index + 1) * self.slots].copy_from_slice(response);
    }

    /// Rebuilds the total from the lanes, accumulating customers in index
    /// order per slot — the exact fold order of
    /// `TimeSeries::from_fn(h, |h| lanes.map(|l| l[h]).sum())`, evaluated
    /// lane-contiguously.
    pub fn rebuild_total(&mut self) {
        self.total.iter_mut().for_each(|value| *value = 0.0);
        for index in 0..self.customers {
            let lane = &self.tradings[index * self.slots..(index + 1) * self.slots];
            for (total, &own) in self.total.iter_mut().zip(lane) {
                *total += own;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_types::{Horizon, TimeSeries};

    fn filled(workspace: &mut BatchResponseWorkspace, lanes: &[Vec<f64>]) {
        workspace.begin(lanes.len(), lanes[0].len());
        for (index, lane) in lanes.iter().enumerate() {
            workspace.set_lane(index, lane);
        }
        workspace.rebuild_total();
    }

    #[test]
    fn others_matches_series_subtraction_bitwise() {
        let lanes = vec![
            vec![1.5, -2.25, 0.1, 7.0],
            vec![0.3, 0.7, -11.0, 2.5],
            vec![-0.4, 3.3, 5.5, -1.25],
        ];
        let mut ws = BatchResponseWorkspace::new();
        filled(&mut ws, &lanes);

        let horizon = Horizon::hourly(4);
        let total = TimeSeries::from_fn(horizon, |h| lanes.iter().map(|l| l[h]).sum());
        for index in 0..lanes.len() {
            let series = TimeSeries::from_values(horizon, lanes[index].clone()).unwrap();
            let expected = total.sub(&series).unwrap();
            let got = ws.fill_others(index).to_vec();
            for h in 0..4 {
                assert_eq!(expected[h].to_bits(), got[h].to_bits(), "lane {index} slot {h}");
            }
            let mut buffer = Vec::new();
            ws.fill_others_into(index, &mut buffer);
            assert_eq!(buffer, got);
        }
    }

    #[test]
    fn gauss_seidel_commit_matches_series_addition_bitwise() {
        let lanes = vec![vec![1.0, 2.0, 3.0], vec![-0.5, 0.25, 4.0]];
        let mut ws = BatchResponseWorkspace::new();
        filled(&mut ws, &lanes);

        let horizon = Horizon::hourly(3);
        let response = vec![0.125, -3.5, 2.2];
        let others: Vec<f64> = ws.fill_others(0).to_vec();
        ws.commit_gauss_seidel(0, &response);

        let others_series = TimeSeries::from_values(horizon, others).unwrap();
        let response_series = TimeSeries::from_values(horizon, response.clone()).unwrap();
        let expected = others_series.add(&response_series).unwrap();
        for h in 0..3 {
            assert_eq!(expected[h].to_bits(), ws.total()[h].to_bits(), "slot {h}");
        }
        assert_eq!(ws.trading_lane(0), response.as_slice());
    }

    #[test]
    fn rebuild_total_accumulates_in_customer_order() {
        // Floating-point addition is order-sensitive; the rebuild must fold
        // customers in index order exactly like the from_fn + sum it
        // replaces.
        let lanes = vec![
            vec![1e16, 1.0],
            vec![1.0, 1e-16],
            vec![-1e16, -1.0],
        ];
        let mut ws = BatchResponseWorkspace::new();
        filled(&mut ws, &lanes);
        let horizon = Horizon::hourly(2);
        let expected = TimeSeries::from_fn(horizon, |h| lanes.iter().map(|l| l[h]).sum::<f64>());
        for h in 0..2 {
            assert_eq!(expected[h].to_bits(), ws.total()[h].to_bits(), "slot {h}");
        }
    }

    #[test]
    fn max_abs_delta_matches_fold() {
        let lanes = vec![vec![1.0, -2.0, 0.5]];
        let mut ws = BatchResponseWorkspace::new();
        filled(&mut ws, &lanes);
        let response = [1.5, -2.0, -1.0];
        assert_eq!(ws.max_abs_delta(0, &response), 1.5);
        assert_eq!(ws.max_abs_delta(0, &[1.0, -2.0, 0.5]), 0.0);
    }

    #[test]
    fn begin_reuses_buffers_and_rezeroes() {
        let mut ws = BatchResponseWorkspace::new();
        ws.begin(2, 3);
        ws.set_lane(1, &[1.0, 2.0, 3.0]);
        ws.rebuild_total();
        assert!(ws.total().iter().any(|&v| v != 0.0));
        ws.begin(2, 3);
        assert!(ws.trading_lane(1).iter().all(|&v| v == 0.0));
        assert!(ws.total().iter().all(|&v| v == 0.0));
        assert_eq!(ws.customers(), 2);
        assert_eq!(ws.slots(), 3);
    }
}
