//! Retry-and-fallback chain for the battery optimizer.
//!
//! The cross-entropy method is stochastic: an unlucky stream or a hostile
//! objective can leave it unconverged (or, with corrupted inputs, facing
//! NaN costs). Instead of surfacing that as a panic deep inside the game
//! engine, [`solve_battery_robust`] drives a deterministic chain:
//!
//! 1. **Cross-entropy**, retried under a [`RetryPolicy`] — each retry
//!    reseeds the sampler and escalates the iteration budget;
//! 2. **Projected coordinate descent** (the deterministic ablation solver)
//!    when every CE attempt failed to converge or errored;
//! 3. **Pass-through** (the idle trajectory — schedule exactly the
//!    committed plan, no storage arbitrage) when even the deterministic
//!    solver cannot produce a finite cost.
//!
//! Whatever stage answers, the returned trajectory is never costlier than
//! the best iterate any earlier stage produced, and every fallback is
//! reported as a [`FallbackRecord`] for the caller's
//! [`RunHealth`](nms_types::RunHealth) ledger.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nms_types::{FallbackRecord, Kwh, RetryPolicy, SolveBudget};

use crate::battery::try_optimize_battery_budgeted;
use crate::{
    coordinate_descent_battery, BatteryProblem, CeConfig, CeSolution, CrossEntropyOptimizer,
    SolverError,
};

/// Coordinate-descent sweeps used by the fallback stage (matches the
/// ablation bench's setting).
const FALLBACK_SWEEPS: usize = 3;

/// Which stage of the chain produced the returned trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatterySolveStage {
    /// Cross-entropy converged (possibly after retries).
    CrossEntropy,
    /// Cross-entropy never converged, but its best iterate still beat the
    /// coordinate-descent fallback, so that iterate was kept.
    CrossEntropyBestIterate,
    /// Cross-entropy was abandoned; coordinate descent answered.
    CoordinateDescent,
    /// No solver produced a finite cost; the idle plan passed through.
    PassThrough,
}

impl BatterySolveStage {
    /// Stable label used in fallback records and reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::CrossEntropy => "cross-entropy",
            Self::CrossEntropyBestIterate => "cross-entropy-best-iterate",
            Self::CoordinateDescent => "coordinate-descent",
            Self::PassThrough => "pass-through",
        }
    }
}

/// Result of [`solve_battery_robust`].
#[derive(Debug, Clone)]
pub struct RobustBatteryOutcome {
    /// The full `b⁰..b^H` trajectory (always hard-feasible).
    pub trajectory: Vec<Kwh>,
    /// Objective value of the returned trajectory.
    pub objective: f64,
    /// The stage that answered.
    pub stage: BatterySolveStage,
    /// Extra cross-entropy attempts consumed beyond the first.
    pub retries: usize,
    /// `true` when the watchdog [`SolveBudget`] stopped the cross-entropy
    /// stage early (recorded as `BudgetExceeded` in the fallback reason and
    /// counted by the caller's `RunHealth::budget_breaches`).
    pub budget_breached: bool,
    /// The fallback taken, when the chain descended past cross-entropy.
    pub fallback: Option<FallbackRecord>,
}

/// Runs the cross-entropy → coordinate-descent → pass-through chain on a
/// battery subproblem. Deterministic given `seed` and the policy (and a
/// budget without a wall-clock deadline).
///
/// The watchdog `budget` spans the whole cross-entropy stage: the
/// wall-clock deadline covers all retry attempts together, while the
/// iteration cap bounds each attempt. A breach abandons the stage
/// immediately — no further retries, since the budget is already spent —
/// and the chain descends to coordinate descent, keeping the best iterate
/// found so far as a candidate.
///
/// # Errors
///
/// Returns [`SolverError::Config`] when the policy, budget, or CE
/// configuration is invalid. Solver-stage failures do *not* error — they
/// descend the chain.
pub fn solve_battery_robust(
    problem: &BatteryProblem<'_>,
    base: &CeConfig,
    policy: &RetryPolicy,
    budget: &SolveBudget,
    warm_start: Option<&[f64]>,
    seed: u64,
) -> Result<RobustBatteryOutcome, SolverError> {
    policy.validate()?;
    base.validate()?;
    budget.validate()?;

    let clock = budget.start();
    let mut best_ce: Option<CeSolution> = None;
    let mut retries = 0;
    let mut budget_breached = false;
    let mut abandon_reason = String::new();
    for attempt in 0..policy.max_attempts {
        if attempt > 0 {
            retries += 1;
        }
        let config = CeConfig {
            max_iters: policy.budget(base.max_iters, attempt),
            ..*base
        };
        let optimizer = CrossEntropyOptimizer::new(config);
        let mut rng = ChaCha8Rng::seed_from_u64(policy.reseed(seed, attempt));
        match try_optimize_battery_budgeted(problem, &optimizer, warm_start, &mut rng, Some(&clock))
        {
            Ok((trajectory, solution)) if solution.converged => {
                let objective = solution.objective;
                return Ok(RobustBatteryOutcome {
                    trajectory,
                    objective,
                    stage: BatterySolveStage::CrossEntropy,
                    retries,
                    budget_breached,
                    fallback: None,
                });
            }
            Ok((_, solution)) => {
                let breached = solution.budget_breached;
                abandon_reason = if breached {
                    format!(
                        "BudgetExceeded: {}",
                        clock
                            .breach(solution.iterations)
                            .unwrap_or_else(|| "watchdog budget exhausted".into())
                    )
                } else {
                    format!(
                        "did not converge within {} iterations over {} attempt(s)",
                        config.max_iters,
                        attempt + 1
                    )
                };
                let better = best_ce
                    .as_ref()
                    .is_none_or(|best| solution.objective < best.objective);
                if better {
                    best_ce = Some(solution);
                }
                if breached {
                    // The budget is spent; retrying would breach again.
                    budget_breached = true;
                    break;
                }
            }
            Err(err) => abandon_reason = err.to_string(),
        }
    }

    // Stage 2: deterministic coordinate descent. Keep whichever of the
    // fallback and the best (non-converged) CE iterate costs less, so
    // descending the chain can never make the schedule worse — and report
    // the stage that actually produced the kept schedule.
    let cd_trajectory = coordinate_descent_battery(problem, FALLBACK_SWEEPS);
    let cd_interior: Vec<f64> = cd_trajectory[1..].iter().map(|b| b.value()).collect();
    let cd_cost = problem.objective(&cd_interior);
    if cd_cost.is_finite() {
        let (trajectory, objective, stage) = match best_ce {
            Some(ce) if ce.objective < cd_cost => (
                problem.full_trajectory(&ce.point),
                ce.objective,
                BatterySolveStage::CrossEntropyBestIterate,
            ),
            _ => (cd_trajectory, cd_cost, BatterySolveStage::CoordinateDescent),
        };
        let reason = if stage == BatterySolveStage::CrossEntropyBestIterate {
            format!(
                "{abandon_reason}; kept the best non-converged iterate \
                 (cost {objective} beats coordinate descent's {cd_cost})"
            )
        } else {
            abandon_reason
        };
        return Ok(RobustBatteryOutcome {
            trajectory,
            objective,
            stage,
            retries,
            budget_breached,
            fallback: Some(FallbackRecord::new(
                "battery-optimizer",
                BatterySolveStage::CrossEntropy.label(),
                stage.label(),
                reason,
            )),
        });
    }

    // Stage 3: pass-through — keep the committed plan with the battery
    // idle. The objective may be non-finite (the inputs are that broken),
    // but the trajectory is feasible and the pipeline keeps moving.
    let idle = problem.idle_interior();
    let objective = problem.objective(&idle);
    Ok(RobustBatteryOutcome {
        trajectory: problem.full_trajectory(&idle),
        objective,
        stage: BatterySolveStage::PassThrough,
        retries,
        budget_breached,
        fallback: Some(FallbackRecord::new(
            "battery-optimizer",
            BatterySolveStage::CoordinateDescent.label(),
            BatterySolveStage::PassThrough.label(),
            format!("coordinate descent cost is non-finite ({cd_cost})"),
        )),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_pricing::{CostModel, NetMeteringTariff, PriceSignal};
    use nms_smarthome::Battery;
    use nms_types::{Horizon, TimeSeries};

    struct Fixture {
        prices: PriceSignal,
        load: TimeSeries<f64>,
        generation: TimeSeries<f64>,
        others: TimeSeries<f64>,
        battery: Battery,
    }

    impl Fixture {
        fn arbitrage() -> Self {
            let day = Horizon::hourly_day();
            let prices = PriceSignal::new(TimeSeries::from_fn(day, |h| {
                if (18..22).contains(&h) {
                    0.5
                } else if h < 6 {
                    0.02
                } else {
                    0.1
                }
            }))
            .unwrap();
            Self {
                prices,
                load: TimeSeries::filled(day, 1.0),
                generation: TimeSeries::filled(day, 0.0),
                others: TimeSeries::filled(day, 20.0),
                battery: Battery::new(Kwh::new(5.0), Kwh::ZERO).unwrap(),
            }
        }

        fn problem(&self) -> BatteryProblem<'_> {
            BatteryProblem::new(
                &self.battery,
                &self.load,
                &self.generation,
                &self.others,
                CostModel::new(&self.prices, NetMeteringTariff::default()),
            )
        }
    }

    #[test]
    fn converging_ce_answers_without_fallback() {
        let fixture = Fixture::arbitrage();
        let problem = fixture.problem();
        let outcome = solve_battery_robust(
            &problem,
            &CeConfig::default(),
            &RetryPolicy::default(),
            &SolveBudget::unlimited(),
            None,
            7,
        )
        .unwrap();
        assert_eq!(outcome.stage, BatterySolveStage::CrossEntropy);
        assert!(outcome.fallback.is_none());
        assert_eq!(outcome.retries, 0);
        fixture.battery.validate_trajectory(&outcome.trajectory).unwrap();
    }

    #[test]
    fn strangled_ce_falls_back_to_coordinate_descent() {
        let fixture = Fixture::arbitrage();
        let problem = fixture.problem();
        // One iteration with an unreachable collapse tolerance: CE can
        // never converge, so the chain must descend.
        let strangled = CeConfig {
            max_iters: 1,
            std_tol_fraction: 0.0,
            ..CeConfig::default()
        };
        let policy = RetryPolicy {
            max_attempts: 2,
            iteration_growth: 1.0,
            reseed_stride: 1,
        };
        let outcome =
            solve_battery_robust(&problem, &strangled, &policy, &SolveBudget::unlimited(), None, 7)
                .unwrap();
        assert_eq!(outcome.stage, BatterySolveStage::CoordinateDescent);
        assert_eq!(outcome.retries, 1);
        let record = outcome.fallback.as_ref().expect("fallback recorded");
        assert_eq!(record.component, "battery-optimizer");
        assert_eq!(record.from, "cross-entropy");
        assert_eq!(record.to, "coordinate-descent");

        // The fallback schedule is no worse than the non-converged CE
        // iterate it replaced (re-run stage 1 manually to compare).
        let optimizer = CrossEntropyOptimizer::new(CeConfig {
            max_iters: 1,
            ..strangled
        });
        let mut rng = ChaCha8Rng::seed_from_u64(policy.reseed(7, 0));
        let (_, ce_iterate) =
            try_optimize_battery_budgeted(&problem, &optimizer, None, &mut rng, None).unwrap();
        assert!(
            outcome.objective <= ce_iterate.objective + 1e-12,
            "fallback {} vs CE iterate {}",
            outcome.objective,
            ce_iterate.objective
        );
        fixture.battery.validate_trajectory(&outcome.trajectory).unwrap();
    }

    #[test]
    fn nan_prices_pass_through_with_two_fallbacks_recorded() {
        let day = Horizon::hourly_day();
        // A price signal cannot carry NaN, but a corrupted load series can
        // poison every trading amount — and with it the whole objective.
        let fixture = Fixture::arbitrage();
        let poisoned_load = TimeSeries::filled(day, f64::NAN);
        let problem = BatteryProblem::new(
            &fixture.battery,
            &poisoned_load,
            &fixture.generation,
            &fixture.others,
            CostModel::new(&fixture.prices, NetMeteringTariff::default()),
        );
        let outcome = solve_battery_robust(
            &problem,
            &CeConfig::fast(),
            &RetryPolicy::default(),
            &SolveBudget::unlimited(),
            None,
            3,
        )
        .unwrap();
        assert_eq!(outcome.stage, BatterySolveStage::PassThrough);
        let record = outcome.fallback.expect("fallback recorded");
        assert_eq!(record.to, "pass-through");
        // The pass-through plan keeps the battery idle.
        assert!(outcome
            .trajectory
            .iter()
            .all(|&b| b == fixture.battery.initial_charge()));
    }

    #[test]
    fn budget_breach_abandons_retries_and_descends_the_chain() {
        let fixture = Fixture::arbitrage();
        let problem = fixture.problem();
        // CE cannot converge (unreachable tolerance) and the watchdog
        // allows a single iteration, so the first attempt breaches and the
        // remaining retries are skipped.
        let strangled = CeConfig {
            max_iters: 10,
            std_tol_fraction: 0.0,
            ..CeConfig::default()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            iteration_growth: 2.0,
            reseed_stride: 1,
        };
        let budget = SolveBudget {
            max_iterations: Some(1),
            max_wall_secs: None,
        };
        let outcome =
            solve_battery_robust(&problem, &strangled, &policy, &budget, None, 7).unwrap();
        assert!(outcome.budget_breached);
        assert_eq!(outcome.retries, 0, "breach must stop further attempts");
        let record = outcome.fallback.as_ref().expect("fallback recorded");
        assert!(
            record.reason.starts_with("BudgetExceeded"),
            "reason: {}",
            record.reason
        );
        fixture
            .battery
            .validate_trajectory(&outcome.trajectory)
            .unwrap();

        // An invalid budget is a config error, like an invalid policy.
        let bad = SolveBudget {
            max_iterations: Some(0),
            max_wall_secs: None,
        };
        assert!(matches!(
            solve_battery_robust(&problem, &strangled, &policy, &bad, None, 7),
            Err(SolverError::Config(_))
        ));
    }

    #[test]
    fn invalid_policy_is_a_config_error() {
        let fixture = Fixture::arbitrage();
        let problem = fixture.problem();
        let bad = RetryPolicy {
            max_attempts: 0,
            iteration_growth: 2.0,
            reseed_stride: 1,
        };
        assert!(matches!(
            solve_battery_robust(&problem, &CeConfig::fast(), &bad, &SolveBudget::unlimited(), None, 1),
            Err(SolverError::Config(_))
        ));
    }

    #[test]
    fn deterministic_under_seed() {
        let fixture = Fixture::arbitrage();
        let problem = fixture.problem();
        let run = || {
            solve_battery_robust(
                &problem,
                &CeConfig::fast(),
                &RetryPolicy::default(),
                &SolveBudget::unlimited(),
                None,
                11,
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.trajectory, b.trajectory);
    }
}
