//! Cross-solve best-response memo cache (DESIGN.md §15).
//!
//! The per-solve `ResponseCache` (DESIGN.md §9) only pays off within one
//! game solve: limit-cycle rounds late in the iteration re-solve problems
//! the early rounds already answered. The communities the paper exhibits
//! are *also* repetitive across days — the market re-clears near-identical
//! prices against near-identical aggregates — so a [`PersistentCache`] can
//! be carried across day boundaries inside the supervised runner and keep
//! its entries as long as the solver configuration that produced them is
//! unchanged.
//!
//! ## Key scheme: quantized bucket, exact verification
//!
//! A cache that *keys* on quantized inputs would return a cached response
//! for inputs that merely land in the same quantization cell — correct for
//! an approximate solver, but fatal for this repo's bit-identity contract
//! (a cached day must equal a cold day bit for bit). The persistent cache
//! therefore splits the key in two:
//!
//! - **bucket** — FNV-1a over the customer fingerprint, the believed price
//!   lane, the *quantized* others-trading series, and the warm-start
//!   fingerprint. This is the `HashMap` key; quantization makes
//!   near-identical inputs collide into the same bucket cheaply.
//! - **exact** — FNV-1a over the same inputs with the raw `f64` bit
//!   patterns, stored inside the entry. A lookup only hits when the stored
//!   exact hash matches the probe's, so a hit certifies the cached response
//!   was computed from bit-identical inputs and is therefore bit-identical
//!   to what recomputation would return (modulo a 2⁻⁶⁴ FNV collision,
//!   which we accept and document here).
//!
//! The warm-start schedule enters both halves as a single precomputed
//! [`schedule_fingerprint`] word rather than a per-probe walk over its
//! energies: the engine only ever warm-starts from a response *it just
//! committed*, so every entry stores its own response's fingerprint and a
//! hit hands the next probe its warm word for free. Misses compute the
//! fingerprint once, at insertion. This keeps the per-probe hash cost at
//! `O(slots)` for the others lane plus three mixed words, instead of
//! re-walking every appliance schedule on every probe.
//!
//! ## What is cacheable
//!
//! Only customers whose best response is a pure function of its inputs:
//! the response must not consume the per-customer RNG stream. The solver
//! draws randomness solely in the cross-entropy battery step, and only
//! when `response.use_battery && customer.battery().is_usable()` — so
//! battery-active customers are never cached (they tally as misses,
//! preserving the `hits + misses == customers × rounds` invariant), while
//! the pure-DP majority is. Per-round seeds are still drawn for every
//! customer regardless of hits, so the caller-visible RNG stream is
//! unchanged by caching (the same RNG-neutrality contract the per-solve
//! cache honors).
//!
//! ## Invalidation
//!
//! Entries are valid only under the solver configuration + tariff that
//! produced them. [`PersistentCache::ensure_config`] compares a
//! fingerprint of that context and drops every entry when it changes;
//! callers holding one cache across heterogeneous solves therefore
//! self-heal instead of serving stale responses.

use std::collections::HashMap;

use nms_smarthome::CustomerSchedule;
use nms_types::ValidateError;

use crate::game::Fnv1a;

/// Quantized-bucket / exact-verified memo key pair for one best-response
/// invocation. Built by the game engine from the SoA lanes; see the
/// [module docs](self) for the scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PersistentKey {
    /// Map key: FNV-1a over quantized inputs.
    pub(crate) bucket: u64,
    /// Stored-in-entry verifier: FNV-1a over the raw input bits.
    pub(crate) exact: u64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    exact: u64,
    /// [`schedule_fingerprint`] of `response`, precomputed at insertion so
    /// a hit can hand the caller its next warm-start word without
    /// re-walking the schedule.
    response_fp: u64,
    response: CustomerSchedule,
}

/// Warm-start fingerprint of a cold (no prior schedule) invocation.
/// Distinct from every [`schedule_fingerprint`] except by a 2⁻⁶⁴ FNV
/// collision, which the cache's exact verification already accepts.
pub(crate) const COLD_WARM_FP: u64 = 0;

/// Content fingerprint of one customer schedule as a warm start: raw `f64`
/// bit patterns of every appliance energy and battery level, behind a tag
/// word separating it from [`COLD_WARM_FP`]. Computed once per cache
/// insertion (and handed back on hits), never per probe.
pub(crate) fn schedule_fingerprint(schedule: &CustomerSchedule) -> u64 {
    let mut fp = Fnv1a::new();
    fp.word(1);
    for appliance in schedule.appliance_schedules() {
        for &value in appliance.energy().iter() {
            fp.word(value.to_bits());
        }
    }
    for level in schedule.battery() {
        fp.word(level.value().to_bits());
    }
    fp.finish()
}

/// Best-response memo cache that survives across game solves — and, when
/// owned by the supervised runner, across day boundaries. Hits are
/// bit-identical to cold recomputation by construction (exact-hash
/// verification); see the [module docs](self).
#[derive(Debug, Clone)]
pub struct PersistentCache {
    quantum: f64,
    config_hash: Option<u64>,
    entries: HashMap<u64, CacheEntry>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl PersistentCache {
    /// A cache bucketing on the given quantum (kWh on the quantization
    /// grid; smaller groups less, larger groups more — hits stay exact
    /// either way).
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] unless `quantum` is positive and finite.
    pub fn new(quantum: f64) -> Result<Self, ValidateError> {
        if !(quantum > 0.0 && quantum.is_finite()) {
            return Err(ValidateError::new(
                "persistent cache quantum must be positive and finite",
            ));
        }
        Ok(Self {
            quantum,
            config_hash: None,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            invalidations: 0,
        })
    }

    /// The bucketing quantum.
    #[inline]
    pub fn quantum(&self) -> f64 {
        self.quantum
    }

    /// Entries currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hits across every solve this cache served.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime misses across every solve this cache served.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Times [`PersistentCache::ensure_config`] dropped the entries because
    /// the solver context changed.
    #[inline]
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Declares the solver context (response config + tariff fingerprint)
    /// for the solve about to run. A change from the previously declared
    /// context drops every entry — cached responses are only valid under
    /// the configuration that produced them.
    pub fn ensure_config(&mut self, config_hash: u64) {
        match self.config_hash {
            Some(current) if current == config_hash => {}
            Some(_) => {
                self.entries.clear();
                self.invalidations += 1;
                self.config_hash = Some(config_hash);
            }
            None => self.config_hash = Some(config_hash),
        }
    }

    /// Looks up a response; a hit requires the stored exact hash to match
    /// the probe's, so the returned schedule is bit-identical to what
    /// recomputation from these inputs would produce. The second element of
    /// a hit is the response's [`schedule_fingerprint`] — the caller's
    /// warm-start word for the next probe of this customer.
    pub(crate) fn lookup(&mut self, key: &PersistentKey) -> Option<(CustomerSchedule, u64)> {
        match self.entries.get(&key.bucket) {
            Some(entry) if entry.exact == key.exact => {
                self.hits += 1;
                Some((entry.response.clone(), entry.response_fp))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Tallies a miss for an invocation that bypassed the cache entirely
    /// (battery-active customers), keeping `hits + misses` equal to the
    /// total invocation count.
    pub(crate) fn tally_uncacheable(&mut self) {
        self.misses += 1;
    }

    /// Stores a freshly computed response under its key pair, replacing any
    /// stale occupant of the bucket. `response_fp` is the response's
    /// [`schedule_fingerprint`], computed once here by the caller and
    /// handed back verbatim on every future hit.
    pub(crate) fn insert(
        &mut self,
        key: &PersistentKey,
        response: &CustomerSchedule,
        response_fp: u64,
    ) {
        self.entries.insert(
            key.bucket,
            CacheEntry {
                exact: key.exact,
                response_fp,
                response: response.clone(),
            },
        );
    }

    /// Builds the bucket/exact key pair for one invocation in a single pass
    /// over the inputs. `customer_fp` and `price_fp` are per-solve
    /// fingerprints the engine precomputes once per customer; `warm_fp` is
    /// the warm-start schedule's [`schedule_fingerprint`] (or
    /// [`COLD_WARM_FP`]), memoized by the engine between invocations.
    pub(crate) fn keys(
        &self,
        customer_fp: u64,
        price_fp: u64,
        others_trading: &[f64],
        warm_fp: u64,
    ) -> PersistentKey {
        let mut bucket = Fnv1a::new();
        let mut exact = Fnv1a::new();
        bucket.word(customer_fp);
        exact.word(customer_fp);
        bucket.word(price_fp);
        exact.word(price_fp);
        for &value in others_trading {
            bucket.word(self.quantize(value));
            exact.word(value.to_bits());
        }
        bucket.word(warm_fp);
        exact.word(warm_fp);
        PersistentKey {
            bucket: bucket.finish(),
            exact: exact.finish(),
        }
    }

    fn quantize(&self, value: f64) -> u64 {
        ((value / self.quantum).round() as i64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_smarthome::{Appliance, ApplianceKind, ApplianceSchedule, Customer, PowerLevels, TaskSpec};
    use nms_types::{ApplianceId, CustomerId, Horizon, Kw, Kwh, TimeSeries};

    /// A feasible schedule: 2 kWh total, `first` kWh in slot 0 and the
    /// remainder in slot 1 — distinct `first` values give distinct but
    /// valid warm starts.
    fn schedule(first: f64) -> CustomerSchedule {
        let day = Horizon::hourly_day();
        let customer = Customer::builder(CustomerId::new(0), day)
            .appliance(Appliance::new(
                ApplianceId::new(0),
                ApplianceKind::WaterHeater,
                PowerLevels::stepped(Kw::new(2.0), 2).unwrap(),
                TaskSpec::new(Kwh::new(2.0), 0, 23).unwrap(),
            ))
            .build()
            .unwrap();
        let energy = TimeSeries::from_fn(day, |h| match h {
            0 => first,
            1 => 2.0 - first,
            _ => 0.0,
        });
        let appliance = ApplianceSchedule::new(&customer.appliances()[0], day, energy).unwrap();
        CustomerSchedule::new(&customer, vec![appliance], vec![Kwh::ZERO; 25]).unwrap()
    }

    #[test]
    fn rejects_bad_quantum() {
        assert!(PersistentCache::new(0.0).is_err());
        assert!(PersistentCache::new(-1.0).is_err());
        assert!(PersistentCache::new(f64::NAN).is_err());
        assert!(PersistentCache::new(1e-9).is_ok());
    }

    #[test]
    fn hit_requires_exact_match() {
        let mut cache = PersistentCache::new(0.5).unwrap();
        let response = schedule(0.0);
        let base = [1.0, 2.0, 3.0];
        // Perturbed within half a quantum: same bucket, different exact.
        let near = [1.0 + 0.1, 2.0, 3.0];
        let key = cache.keys(7, 9, &base, COLD_WARM_FP);
        let near_key = cache.keys(7, 9, &near, COLD_WARM_FP);
        assert_eq!(key.bucket, near_key.bucket, "quantization should collide");
        assert_ne!(key.exact, near_key.exact);

        let fp = schedule_fingerprint(&response);
        cache.insert(&key, &response, fp);
        let hit = cache.lookup(&key);
        assert!(hit.is_some(), "exact probe must hit");
        assert_eq!(
            hit.unwrap().1,
            fp,
            "hit must return the stored response fingerprint"
        );
        assert!(
            cache.lookup(&near_key).is_none(),
            "same-bucket inexact probe must miss, never return a stale response"
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn warm_start_distinguishes_keys() {
        let cache = PersistentCache::new(1e-6).unwrap();
        let others = [0.5, -0.25];
        let cold = cache.keys(1, 2, &others, COLD_WARM_FP);
        let warm_a = cache.keys(1, 2, &others, schedule_fingerprint(&schedule(0.0)));
        let warm_b = cache.keys(1, 2, &others, schedule_fingerprint(&schedule(0.5)));
        assert_ne!(cold.exact, warm_a.exact);
        assert_ne!(warm_a.exact, warm_b.exact);
        assert_ne!(
            schedule_fingerprint(&schedule(0.0)),
            COLD_WARM_FP,
            "a real schedule must not fingerprint as cold"
        );
    }

    #[test]
    fn config_change_drops_entries() {
        let mut cache = PersistentCache::new(1e-6).unwrap();
        let key = cache.keys(1, 2, &[1.0], COLD_WARM_FP);
        let response = schedule(0.0);
        cache.insert(&key, &response, schedule_fingerprint(&response));
        cache.ensure_config(42);
        assert_eq!(cache.len(), 1, "first declaration adopts, never drops");
        cache.ensure_config(42);
        assert_eq!(cache.len(), 1, "unchanged context keeps entries");
        cache.ensure_config(43);
        assert!(cache.is_empty(), "changed context must drop entries");
        assert_eq!(cache.invalidations(), 1);
    }

    #[test]
    fn uncacheable_tally_counts_as_miss() {
        let mut cache = PersistentCache::new(1e-6).unwrap();
        cache.tally_uncacheable();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 0);
    }
}
