//! The cross-entropy optimization method (paper §3.2, following \[3\]).
//!
//! The method maintains a Gaussian sampling distribution per dimension,
//! draws `K` samples, keeps the elite fraction with the best objective
//! values, and refits the distribution to the elites (the analytic solution
//! of the Kullback–Leibler projection in Eqn 5 for the Gaussian family),
//! smoothing the update to avoid premature collapse. Samples are clamped
//! into the feasible box, which for the battery problem is
//! `[0, B_n]` per slot.

use rand::Rng;
use serde::{Deserialize, Serialize};

use nms_par::Parallelism;
use nms_types::{BudgetClock, ValidateError};

use crate::SolverError;

/// The error produced when the objective evaluates to NaN on a sampled
/// point — shared by the sequential and parallel evaluators so both paths
/// fail identically.
fn nan_sample_error() -> SolverError {
    SolverError::Numeric {
        detail: "objective returned NaN for a sampled point".into(),
    }
}

/// Draws one standard-normal variate via the Box–Muller transform (keeps
/// the workspace free of distribution crates; see DESIGN.md §6).
fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Reusable population/elite buffers for cross-entropy solves.
///
/// One CE solve draws `K` sample points per iteration; allocating the
/// population, its objective values, and the distribution vectors fresh per
/// solve dominates small problems (the per-customer battery step runs
/// thousands of times per sweep). Callers hold one workspace and pass it to
/// the `*_in` methods; steady-state reuse then allocates nothing per
/// iteration. Every solve fully reinitializes the prefix it reads, so reuse
/// is bit-identical to fresh allocation.
#[derive(Debug, Clone, Default)]
pub struct CeWorkspace {
    /// Sample points of the current iteration (`K` reusable vectors).
    points: Vec<Vec<f64>>,
    /// Objective values, index-aligned with `points`.
    values: Vec<f64>,
    /// Sample indices, stably sorted by objective value each iteration.
    order: Vec<usize>,
    /// Sampling-distribution mean per dimension.
    mean: Vec<f64>,
    /// Sampling-distribution standard deviation per dimension.
    std: Vec<f64>,
    /// Box width per dimension (collapse-criterion scale).
    widths: Vec<f64>,
    /// Best point ever sampled.
    best_point: Vec<f64>,
}

/// Tuning knobs for [`CrossEntropyOptimizer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CeConfig {
    /// Samples drawn per iteration (`K` in §3.2).
    pub samples: usize,
    /// Fraction of samples kept as the elite set (0, 1].
    pub elite_fraction: f64,
    /// Maximum refinement iterations.
    pub max_iters: usize,
    /// Smoothing factor `α ∈ (0, 1]` applied to mean/std updates
    /// (1 = replace outright).
    pub smoothing: f64,
    /// Initial standard deviation as a fraction of each box width.
    pub init_std_fraction: f64,
    /// Stop when every dimension's std falls below this fraction of its box
    /// width.
    pub std_tol_fraction: f64,
}

impl CeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] for out-of-range parameters (zero samples,
    /// elite fraction outside (0, 1], non-positive smoothing, …).
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.samples < 2 {
            return Err(ValidateError::new("cross entropy needs at least 2 samples"));
        }
        if !(self.elite_fraction > 0.0 && self.elite_fraction <= 1.0) {
            return Err(ValidateError::new("elite fraction must be in (0, 1]"));
        }
        if self.max_iters == 0 {
            return Err(ValidateError::new("need at least one iteration"));
        }
        if !(self.smoothing > 0.0 && self.smoothing <= 1.0) {
            return Err(ValidateError::new("smoothing must be in (0, 1]"));
        }
        if !(self.init_std_fraction > 0.0 && self.init_std_fraction.is_finite()) {
            return Err(ValidateError::new("init std fraction must be positive"));
        }
        if !(self.std_tol_fraction >= 0.0 && self.std_tol_fraction.is_finite()) {
            return Err(ValidateError::new("std tolerance must be non-negative"));
        }
        Ok(())
    }

    /// A lighter preset for inner loops that run thousands of times (fewer
    /// samples and iterations than [`CeConfig::default`]).
    pub fn fast() -> Self {
        Self {
            samples: 32,
            elite_fraction: 0.2,
            max_iters: 25,
            smoothing: 0.8,
            init_std_fraction: 0.4,
            std_tol_fraction: 0.01,
        }
    }
}

impl Default for CeConfig {
    fn default() -> Self {
        Self {
            samples: 64,
            elite_fraction: 0.15,
            max_iters: 60,
            smoothing: 0.7,
            init_std_fraction: 0.4,
            std_tol_fraction: 0.005,
        }
    }
}

/// Result of a cross-entropy run.
#[derive(Debug, Clone, PartialEq)]
pub struct CeSolution {
    /// Best point found (inside the box).
    pub point: Vec<f64>,
    /// Objective value at [`point`](Self::point).
    pub objective: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// `true` when the std-collapse criterion triggered before
    /// `max_iters`.
    pub converged: bool,
    /// `true` when a watchdog [`SolveBudget`](nms_types::SolveBudget)
    /// stopped the run before its own limits did. The solution still holds
    /// the best point sampled so far.
    pub budget_breached: bool,
    /// Sampling-distribution spread after each iteration's refit (the mean
    /// std across dimensions) — the variance trajectory observability
    /// consumes. One entry per executed iteration; empty for
    /// zero-dimensional problems.
    pub std_history: Vec<f64>,
}

/// Minimizes black-box objectives over axis-aligned boxes with the
/// cross-entropy method.
#[derive(Debug, Clone, Copy)]
pub struct CrossEntropyOptimizer {
    config: CeConfig,
}

impl CrossEntropyOptimizer {
    /// Creates an optimizer with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`CeConfig::validate`]
    /// first when the configuration is user-supplied.
    pub fn new(config: CeConfig) -> Self {
        config
            .validate()
            .expect("invalid cross-entropy configuration");
        Self { config }
    }

    /// The bound configuration.
    #[inline]
    pub fn config(&self) -> &CeConfig {
        &self.config
    }

    /// Minimizes `objective` over the box `bounds` (one `(lo, hi)` pair per
    /// dimension), starting the sampling distribution at `init_mean`.
    ///
    /// Returns the best point ever sampled (not merely the final mean), so
    /// the result can only improve with more iterations.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` and `init_mean` disagree in length, when a bound
    /// has `lo > hi`, or when the objective returns NaN for a feasible
    /// point. Use [`CrossEntropyOptimizer::try_minimize`] to get a typed
    /// error instead.
    pub fn minimize(
        &self,
        objective: impl FnMut(&[f64]) -> f64,
        bounds: &[(f64, f64)],
        init_mean: &[f64],
        rng: &mut impl Rng,
    ) -> CeSolution {
        self.try_minimize(objective, bounds, init_mean, rng)
            .unwrap_or_else(|err| panic!("{err}"))
    }

    /// Fallible variant of [`CrossEntropyOptimizer::minimize`]: dimension
    /// mismatches, invalid bounds, and NaN objective values become
    /// [`SolverError::Numeric`] instead of panics, so callers can retry or
    /// fall back (see [`solve_battery_robust`](crate::solve_battery_robust)).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Numeric`] when `bounds` and `init_mean`
    /// disagree in length, a bound has `lo > hi` or is non-finite, or the
    /// objective returns NaN for a feasible point.
    pub fn try_minimize(
        &self,
        objective: impl FnMut(&[f64]) -> f64,
        bounds: &[(f64, f64)],
        init_mean: &[f64],
        rng: &mut impl Rng,
    ) -> Result<CeSolution, SolverError> {
        self.try_minimize_budgeted(objective, bounds, init_mean, rng, None)
    }

    /// Like [`CrossEntropyOptimizer::try_minimize`], but additionally
    /// checked against a running watchdog [`BudgetClock`] at every
    /// iteration boundary. A breach stops the run cleanly: the best point
    /// sampled so far is returned with
    /// [`CeSolution::budget_breached`] set, so the caller can record the
    /// breach and descend its fallback chain without losing progress.
    ///
    /// # Errors
    ///
    /// Same as [`CrossEntropyOptimizer::try_minimize`]; a budget breach is
    /// not an error.
    pub fn try_minimize_budgeted(
        &self,
        objective: impl FnMut(&[f64]) -> f64,
        bounds: &[(f64, f64)],
        init_mean: &[f64],
        rng: &mut impl Rng,
        clock: Option<&BudgetClock>,
    ) -> Result<CeSolution, SolverError> {
        self.try_minimize_budgeted_in(
            objective,
            bounds,
            init_mean,
            rng,
            clock,
            &mut CeWorkspace::default(),
        )
    }

    /// [`CrossEntropyOptimizer::try_minimize_budgeted`] with caller-provided
    /// population/elite buffers: the sample points, objective values, and
    /// distribution vectors live in `ws` and are reused across solves, so a
    /// warm workspace makes the per-iteration loop allocation-free.
    /// Bit-identical to the allocating variant under the same seed.
    ///
    /// # Errors
    ///
    /// Same as [`CrossEntropyOptimizer::try_minimize_budgeted`].
    pub fn try_minimize_budgeted_in(
        &self,
        mut objective: impl FnMut(&[f64]) -> f64,
        bounds: &[(f64, f64)],
        init_mean: &[f64],
        rng: &mut impl Rng,
        clock: Option<&BudgetClock>,
        ws: &mut CeWorkspace,
    ) -> Result<CeSolution, SolverError> {
        // Evaluate in input order and short-circuit on the first NaN —
        // exactly what the pre-batch interleaved loop did.
        self.minimize_core(
            &mut |points, values| {
                for point in points {
                    let value = objective(point);
                    if value.is_nan() {
                        return Err(nan_sample_error());
                    }
                    values.push(value);
                }
                Ok(())
            },
            bounds,
            init_mean,
            rng,
            clock,
            ws,
        )
    }

    /// Like [`CrossEntropyOptimizer::try_minimize_budgeted`], but each
    /// iteration's `K` sample evaluations fan out over
    /// [`nms_par::par_map_chunked`]. Sample *generation* still happens
    /// sequentially on the calling thread in the same RNG order, and the
    /// objective consumes no randomness, so the result is bit-identical to
    /// the sequential method under the same seed — at any thread count.
    ///
    /// The objective must be `Fn + Sync` (workers share it); keep using the
    /// sequential method for stateful `FnMut` objectives.
    ///
    /// # Errors
    ///
    /// Same as [`CrossEntropyOptimizer::try_minimize_budgeted`]; a NaN on
    /// any sampled point surfaces as the lowest-index failure, matching the
    /// sequential first-error behavior.
    pub fn try_minimize_budgeted_par(
        &self,
        objective: impl Fn(&[f64]) -> f64 + Sync,
        bounds: &[(f64, f64)],
        init_mean: &[f64],
        rng: &mut impl Rng,
        clock: Option<&BudgetClock>,
        parallelism: &Parallelism,
    ) -> Result<CeSolution, SolverError> {
        let threads = parallelism.threads;
        // Individual objective evaluations are cheap relative to thread
        // scheduling; chunking amortizes the pull cost.
        let chunk = nms_par::auto_chunk(self.config.samples, threads);
        self.minimize_core(
            &mut |points, values| {
                let batch = nms_par::par_map_chunked(threads, chunk, points, |_, point: &Vec<f64>| {
                    let value = objective(point);
                    if value.is_nan() {
                        Err(nan_sample_error())
                    } else {
                        Ok(value)
                    }
                })?;
                values.extend(batch);
                Ok(())
            },
            bounds,
            init_mean,
            rng,
            clock,
            &mut CeWorkspace::default(),
        )
    }

    /// The shared CE loop: per iteration, draw all `K` sample points from
    /// `rng`, hand them to `eval_batch` (which appends their objective
    /// values in order to the output buffer, or returns the lowest-index
    /// evaluation failure), then refit the sampling distribution on the
    /// elites. All steady-state buffers live in `ws`.
    fn minimize_core(
        &self,
        eval_batch: &mut dyn FnMut(&[Vec<f64>], &mut Vec<f64>) -> Result<(), SolverError>,
        bounds: &[(f64, f64)],
        init_mean: &[f64],
        rng: &mut impl Rng,
        clock: Option<&BudgetClock>,
        ws: &mut CeWorkspace,
    ) -> Result<CeSolution, SolverError> {
        if bounds.len() != init_mean.len() {
            return Err(SolverError::Numeric {
                detail: format!(
                    "bounds/init_mean dimensions: {} vs {}",
                    bounds.len(),
                    init_mean.len()
                ),
            });
        }
        let dim = bounds.len();
        if dim == 0 {
            ws.values.clear();
            eval_batch(&[Vec::new()], &mut ws.values)?;
            return Ok(CeSolution {
                point: Vec::new(),
                objective: ws.values[0],
                iterations: 0,
                converged: true,
                budget_breached: false,
                std_history: Vec::new(),
            });
        }
        for (d, &(lo, hi)) in bounds.iter().enumerate() {
            if !(lo <= hi && lo.is_finite() && hi.is_finite()) {
                return Err(SolverError::Numeric {
                    detail: format!("invalid bounds at dim {d}: ({lo}, {hi})"),
                });
            }
        }

        let CeWorkspace {
            points,
            values,
            order,
            mean,
            std,
            widths,
            best_point,
        } = ws;

        widths.clear();
        widths.extend(bounds.iter().map(|&(lo, hi)| (hi - lo).max(1e-12)));
        mean.clear();
        mean.extend(
            init_mean
                .iter()
                .zip(bounds)
                .map(|(&m, &(lo, hi))| m.clamp(lo, hi)),
        );
        std.clear();
        std.extend(widths.iter().map(|w| w * self.config.init_std_fraction));

        let samples = self.config.samples;
        let elite_count = ((samples as f64 * self.config.elite_fraction).ceil() as usize)
            .clamp(1, samples);

        best_point.clear();
        best_point.extend_from_slice(mean);
        values.clear();
        eval_batch(std::slice::from_ref(best_point), values).map_err(|_| {
            SolverError::Numeric {
                detail: "objective returned NaN at the initial mean".into(),
            }
        })?;
        let mut best_value = values[0];

        while points.len() < samples {
            points.push(Vec::new());
        }
        let mut iterations = 0;
        let mut converged = false;
        let mut budget_breached = false;
        let mut std_history: Vec<f64> = Vec::new();

        for _ in 0..self.config.max_iters {
            if let Some(clock) = clock {
                if clock.breach(iterations).is_some() {
                    budget_breached = true;
                    break;
                }
            }
            iterations += 1;
            // Draw every sample point before evaluating any of them: the
            // objective consumes no randomness, so this keeps the RNG
            // stream identical to the old interleaved loop while letting
            // the evaluation batch fan out across workers.
            for x in points[..samples].iter_mut() {
                x.clear();
                for d in 0..dim {
                    let v = mean[d] + std[d].max(1e-12) * sample_standard_normal(rng);
                    x.push(v.clamp(bounds[d].0, bounds[d].1));
                }
            }
            values.clear();
            eval_batch(&points[..samples], values)?;
            // Stable index sort by value — the same permutation the old
            // pair sort produced, without moving the points.
            order.clear();
            order.extend(0..samples);
            // No NaN can reach this sort: every sample was checked above.
            order.sort_by(|&a, &b| {
                values[a]
                    .partial_cmp(&values[b])
                    .expect("objective values not NaN")
            });
            let top = order[0];
            if values[top] < best_value {
                best_value = values[top];
                best_point.clone_from(&points[top]);
            }

            // Refit the Gaussian to the elite set (the KL projection of
            // Eqn 5 for the normal family) with smoothing.
            let alpha = self.config.smoothing;
            for d in 0..dim {
                let elite_mean = order[..elite_count]
                    .iter()
                    .map(|&i| points[i][d])
                    .sum::<f64>()
                    / elite_count as f64;
                let elite_var = order[..elite_count]
                    .iter()
                    .map(|&i| (points[i][d] - elite_mean).powi(2))
                    .sum::<f64>()
                    / elite_count as f64;
                mean[d] = alpha * elite_mean + (1.0 - alpha) * mean[d];
                std[d] = alpha * elite_var.sqrt() + (1.0 - alpha) * std[d];
            }

            std_history.push(std.iter().sum::<f64>() / dim as f64);

            let collapsed = std
                .iter()
                .zip(&*widths)
                .all(|(s, w)| *s <= self.config.std_tol_fraction * w);
            if collapsed {
                converged = true;
                break;
            }
        }

        Ok(CeSolution {
            point: best_point.clone(),
            objective: best_value,
            iterations,
            converged,
            budget_breached,
            std_history,
        })
    }
}

impl Default for CrossEntropyOptimizer {
    fn default() -> Self {
        Self::new(CeConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn config_validation() {
        assert!(CeConfig::default().validate().is_ok());
        assert!(CeConfig::fast().validate().is_ok());
        assert!(CeConfig {
            samples: 1,
            ..CeConfig::default()
        }
        .validate()
        .is_err());
        assert!(CeConfig {
            elite_fraction: 0.0,
            ..CeConfig::default()
        }
        .validate()
        .is_err());
        assert!(CeConfig {
            smoothing: 1.5,
            ..CeConfig::default()
        }
        .validate()
        .is_err());
        assert!(CeConfig {
            max_iters: 0,
            ..CeConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn finds_quadratic_minimum() {
        let optimizer = CrossEntropyOptimizer::default();
        let solution = optimizer.minimize(
            |x| x.iter().map(|v| (v - 0.7).powi(2)).sum(),
            &[(0.0, 2.0); 6],
            &[1.8; 6],
            &mut rng(3),
        );
        for v in &solution.point {
            assert!((v - 0.7).abs() < 0.05, "point {v}");
        }
        assert!(solution.converged);
        assert_eq!(solution.std_history.len(), solution.iterations);
        assert!(solution.std_history.iter().all(|s| s.is_finite() && *s >= 0.0));
        // Convergence means the spread collapsed over the run.
        assert!(solution.std_history.last().unwrap() < solution.std_history.first().unwrap());
    }

    #[test]
    fn respects_box_when_minimum_outside() {
        let optimizer = CrossEntropyOptimizer::default();
        let solution =
            optimizer.minimize(|x| (x[0] + 5.0).powi(2), &[(0.0, 1.0)], &[0.5], &mut rng(4));
        // Unconstrained minimum at −5 is outside; the box edge wins.
        assert!(solution.point[0] >= 0.0);
        assert!(solution.point[0] < 0.05);
    }

    #[test]
    fn handles_nonconvex_objective() {
        // Rastrigin-like in 1-D: many local minima, global at 0.
        let optimizer = CrossEntropyOptimizer::new(CeConfig {
            samples: 128,
            max_iters: 80,
            ..CeConfig::default()
        });
        let solution = optimizer.minimize(
            |x| x[0] * x[0] + 2.0 * (1.0 - (4.0 * std::f64::consts::PI * x[0]).cos()),
            &[(-3.0, 3.0)],
            &[2.5],
            &mut rng(5),
        );
        assert!(solution.point[0].abs() < 0.1, "got {}", solution.point[0]);
    }

    #[test]
    fn zero_dimensional_problem() {
        let optimizer = CrossEntropyOptimizer::default();
        let solution = optimizer.minimize(|_| 42.0, &[], &[], &mut rng(6));
        assert_eq!(solution.objective, 42.0);
        assert!(solution.converged);
    }

    #[test]
    fn deterministic_under_seed() {
        let optimizer = CrossEntropyOptimizer::default();
        let run = |seed| {
            optimizer.minimize(
                |x| (x[0] - 0.2).powi(2) + (x[1] - 0.9).powi(2),
                &[(0.0, 1.0); 2],
                &[0.5; 2],
                &mut rng(seed),
            )
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn reused_workspace_is_bit_identical_to_fresh() {
        // One workspace across solves of different dimensions and boxes;
        // each must match a fresh-allocation solve exactly.
        let optimizer = CrossEntropyOptimizer::new(CeConfig::fast());
        let mut ws = CeWorkspace::default();
        let cases: [(usize, f64); 3] = [(6, 0.7), (2, -0.3), (4, 1.4)];
        for (round, &(dim, target)) in cases.iter().enumerate() {
            let seed = 100 + round as u64;
            let bounds = vec![(-2.0, 2.0); dim];
            let init = vec![0.0; dim];
            let objective = |x: &[f64]| x.iter().map(|v| (v - target).powi(2)).sum::<f64>();
            let reused = optimizer
                .try_minimize_budgeted_in(objective, &bounds, &init, &mut rng(seed), None, &mut ws)
                .unwrap();
            let fresh = optimizer
                .try_minimize_budgeted(objective, &bounds, &init, &mut rng(seed), None)
                .unwrap();
            assert_eq!(reused, fresh, "round {round}");
        }
    }

    #[test]
    fn best_ever_monotone_in_iterations() {
        let few = CrossEntropyOptimizer::new(CeConfig {
            max_iters: 2,
            std_tol_fraction: 0.0,
            ..CeConfig::default()
        });
        let many = CrossEntropyOptimizer::new(CeConfig {
            max_iters: 40,
            std_tol_fraction: 0.0,
            ..CeConfig::default()
        });
        let objective = |x: &[f64]| (x[0] - 0.31).powi(2);
        let bounds = [(0.0, 1.0)];
        let a = few.minimize(objective, &bounds, &[0.9], &mut rng(11));
        let b = many.minimize(objective, &bounds, &[0.9], &mut rng(11));
        assert!(b.objective <= a.objective + 1e-15);
    }

    #[test]
    fn budget_clock_stops_iterations_cleanly() {
        use nms_types::SolveBudget;
        let optimizer = CrossEntropyOptimizer::new(CeConfig {
            max_iters: 50,
            std_tol_fraction: 0.0,
            ..CeConfig::default()
        });
        let clock = SolveBudget {
            max_iterations: Some(3),
            max_wall_secs: None,
        }
        .start();
        let solution = optimizer
            .try_minimize_budgeted(
                |x| (x[0] - 0.5).powi(2),
                &[(0.0, 1.0)],
                &[0.9],
                &mut rng(7),
                Some(&clock),
            )
            .unwrap();
        assert!(solution.budget_breached);
        assert!(!solution.converged);
        assert_eq!(solution.iterations, 3);
        // The best-so-far point is still inside the box and usable.
        assert!((0.0..=1.0).contains(&solution.point[0]));

        // An expired wall clock stops before the first iteration. The
        // elapsed time is injected rather than slept, so the test cannot
        // flake under scheduler load.
        let clock = BudgetClock::with_elapsed(
            SolveBudget {
                max_iterations: None,
                max_wall_secs: Some(0.5),
            },
            1.0,
        );
        let solution = optimizer
            .try_minimize_budgeted(
                |x| (x[0] - 0.5).powi(2),
                &[(0.0, 1.0)],
                &[0.9],
                &mut rng(7),
                Some(&clock),
            )
            .unwrap();
        assert!(solution.budget_breached);
        assert_eq!(solution.iterations, 0);
        assert_eq!(solution.point, vec![0.9]);
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_sequential() {
        let optimizer = CrossEntropyOptimizer::new(CeConfig {
            samples: 48,
            max_iters: 20,
            ..CeConfig::default()
        });
        let objective =
            |x: &[f64]| (x[0] - 0.3).powi(2) + (x[1] + 0.4).powi(2) + (x[0] * x[1]).sin();
        let bounds = [(-1.0, 1.0); 2];
        let init = [0.5; 2];
        let sequential = optimizer
            .try_minimize_budgeted(objective, &bounds, &init, &mut rng(31), None)
            .unwrap();
        for threads in [1, 2, 4] {
            let parallel = optimizer
                .try_minimize_budgeted_par(
                    objective,
                    &bounds,
                    &init,
                    &mut rng(31),
                    None,
                    &Parallelism::new(threads),
                )
                .unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_evaluation_respects_budget_clock() {
        use nms_types::SolveBudget;
        let optimizer = CrossEntropyOptimizer::new(CeConfig {
            max_iters: 50,
            std_tol_fraction: 0.0,
            ..CeConfig::default()
        });
        let clock = SolveBudget {
            max_iterations: Some(2),
            max_wall_secs: None,
        }
        .start();
        let solution = optimizer
            .try_minimize_budgeted_par(
                |x: &[f64]| (x[0] - 0.5).powi(2),
                &[(0.0, 1.0)],
                &[0.9],
                &mut rng(7),
                Some(&clock),
                &Parallelism::new(4),
            )
            .unwrap();
        assert!(solution.budget_breached);
        assert_eq!(solution.iterations, 2);
    }

    #[test]
    fn parallel_evaluation_reports_nan_as_error() {
        let optimizer = CrossEntropyOptimizer::default();
        let err = optimizer
            .try_minimize_budgeted_par(
                |_: &[f64]| f64::NAN,
                &[(0.0, 1.0)],
                &[0.5],
                &mut rng(0),
                None,
                &Parallelism::new(4),
            )
            .unwrap_err();
        assert!(err.to_string().contains("NaN"), "{err}");
    }

    #[test]
    fn try_minimize_reports_nan_objective_as_error() {
        let optimizer = CrossEntropyOptimizer::default();
        let err = optimizer
            .try_minimize(|_| f64::NAN, &[(0.0, 1.0)], &[0.5], &mut rng(0))
            .unwrap_err();
        assert!(err.to_string().contains("NaN"), "{err}");
        // A well-posed problem succeeds through the same path.
        let ok = optimizer
            .try_minimize(|x| x[0] * x[0], &[(-1.0, 1.0)], &[0.9], &mut rng(1))
            .unwrap();
        assert!(ok.point[0].abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "bounds/init_mean")]
    fn mismatched_dimensions_panic() {
        CrossEntropyOptimizer::default().minimize(|_| 0.0, &[(0.0, 1.0)], &[], &mut rng(0));
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn inverted_bounds_panic() {
        CrossEntropyOptimizer::default().minimize(|_| 0.0, &[(1.0, 0.0)], &[0.5], &mut rng(0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_solution_stays_in_box(
            lo in -5.0_f64..0.0,
            width in 0.1_f64..10.0,
            target in -10.0_f64..10.0,
            seed in 0_u64..1000,
        ) {
            let hi = lo + width;
            let optimizer = CrossEntropyOptimizer::new(CeConfig::fast());
            let solution = optimizer.minimize(
                |x| (x[0] - target).powi(2),
                &[(lo, hi)],
                &[(lo + hi) / 2.0],
                &mut rng(seed),
            );
            prop_assert!(solution.point[0] >= lo - 1e-12);
            prop_assert!(solution.point[0] <= hi + 1e-12);
            // And it should do at least as well as the box-projected target.
            let projected = target.clamp(lo, hi);
            let bound = (projected - target).powi(2);
            prop_assert!(solution.objective >= bound - 1e-9);
        }
    }
}
