//! Home-level distributed generation: the rooftop PV panel (paper §2.2).
//!
//! The paper assumes the renewable generation `θ_n^h` is "approximately known
//! in advance through prediction", so a panel carries its per-slot generation
//! profile directly. The [`clear_sky_profile`] helper produces the canonical
//! bell-shaped daytime curve that, once aggregated over a community, creates
//! the midday grid-demand dip that the whole paper revolves around.

use serde::{Deserialize, Serialize};

use nms_types::{Horizon, Kw, Kwh, TimeSeries, ValidateError};

/// A rooftop PV installation with a nameplate rating and a per-slot
/// generation profile `θ_n^h`.
///
/// # Examples
///
/// ```
/// use nms_smarthome::{clear_sky_profile, PvPanel};
/// use nms_types::{Horizon, Kw};
///
/// let horizon = Horizon::hourly_day();
/// let panel = PvPanel::new(Kw::new(4.0), clear_sky_profile(horizon, Kw::new(4.0)))?;
/// // Solar panels generate nothing at midnight and peak near noon.
/// assert_eq!(panel.generation(0).value(), 0.0);
/// assert!(panel.generation(12).value() > panel.generation(8).value());
/// # Ok::<(), nms_types::ValidateError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PvPanel {
    rating: Kw,
    profile: TimeSeries<f64>,
}

impl PvPanel {
    /// Creates a panel from its nameplate rating and per-slot generation
    /// (kWh per slot).
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when any profile entry is negative,
    /// non-finite, or exceeds what the rating could deliver in one slot.
    pub fn new(rating: Kw, profile: TimeSeries<f64>) -> Result<Self, ValidateError> {
        if !rating.is_finite() || !rating.is_non_negative() {
            return Err(ValidateError::new(
                "pv rating must be finite and non-negative",
            ));
        }
        let cap = rating.for_hours(profile.horizon().slot_hours()).value();
        for (slot, &gen) in profile.iter().enumerate() {
            if !gen.is_finite() || gen < 0.0 {
                return Err(ValidateError::new(format!(
                    "pv generation at slot {slot} must be finite and non-negative"
                )));
            }
            if gen > cap + 1e-9 {
                return Err(ValidateError::new(format!(
                    "pv generation {gen:.3} kWh at slot {slot} exceeds rating cap {cap:.3} kWh"
                )));
            }
        }
        Ok(Self { rating, profile })
    }

    /// A home without PV: zero rating, zero generation.
    pub fn none(horizon: Horizon) -> Self {
        Self {
            rating: Kw::ZERO,
            profile: TimeSeries::filled(horizon, 0.0),
        }
    }

    /// Nameplate rating in kW.
    #[inline]
    pub fn rating(&self) -> Kw {
        self.rating
    }

    /// Generation at `slot`, in kWh.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the profile's horizon.
    #[inline]
    pub fn generation(&self, slot: usize) -> Kwh {
        Kwh::new(self.profile[slot])
    }

    /// The full generation profile (kWh per slot).
    #[inline]
    pub fn profile(&self) -> &TimeSeries<f64> {
        &self.profile
    }

    /// Total energy generated over the horizon.
    pub fn total_generation(&self) -> Kwh {
        Kwh::new(self.profile.total())
    }

    /// Returns `true` for a panel that generates anything at all.
    pub fn is_generating(&self) -> bool {
        self.profile.iter().any(|&g| g > 0.0)
    }

    /// Returns a copy whose profile is scaled by `factor` (cloud cover,
    /// seasonal derating). Factors are clamped to be non-negative.
    pub fn derated(&self, factor: f64) -> Self {
        let f = factor.max(0.0);
        Self {
            rating: self.rating,
            profile: self.profile.scaled(f),
        }
    }
}

/// The deterministic clear-sky generation curve for a panel of nameplate
/// `rating`: zero outside 06:00–18:00 and a raised-cosine bell peaking at
/// noon, discretized per slot (kWh per slot).
///
/// Real irradiance data is proprietary to the paper's setup; this standard
/// analytic substitute produces the same qualitative shape (nothing at night,
/// maximum at midday) that drives the net-metering demand dip. Weather
/// randomness is layered on top by `nms-sim`.
pub fn clear_sky_profile(horizon: Horizon, rating: Kw) -> TimeSeries<f64> {
    const SUNRISE: f64 = 6.0;
    const SUNSET: f64 = 18.0;
    TimeSeries::from_fn(horizon, |slot| {
        let hour = horizon.hour_of_day(slot) + horizon.slot_hours() / 2.0;
        if hour <= SUNRISE || hour >= SUNSET {
            return 0.0;
        }
        // Raised cosine: 0 at sunrise/sunset, 1 at solar noon.
        let phase = (hour - SUNRISE) / (SUNSET - SUNRISE);
        let irradiance = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
        rating.for_hours(horizon.slot_hours()).value() * irradiance
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    #[test]
    fn clear_sky_is_zero_at_night_and_peaks_midday() {
        let profile = clear_sky_profile(day(), Kw::new(4.0));
        assert_eq!(profile[0], 0.0);
        assert_eq!(profile[23], 0.0);
        assert_eq!(profile[5], 0.0);
        let peak_slot = profile.peak_slot();
        assert!((11..=12).contains(&peak_slot), "peak at {peak_slot}");
        assert!(profile.peak() > 3.0);
    }

    #[test]
    fn clear_sky_respects_rating_cap() {
        let rating = Kw::new(5.0);
        let profile = clear_sky_profile(day(), rating);
        assert!(PvPanel::new(rating, profile).is_ok());
    }

    #[test]
    fn panel_rejects_generation_above_rating() {
        let mut profile = TimeSeries::filled(day(), 0.0);
        profile[12] = 3.0;
        assert!(PvPanel::new(Kw::new(2.0), profile).is_err());
    }

    #[test]
    fn panel_rejects_negative_or_nan_generation() {
        let mut profile = TimeSeries::filled(day(), 0.0);
        profile[3] = -0.5;
        assert!(PvPanel::new(Kw::new(2.0), profile).is_err());
        let mut profile = TimeSeries::filled(day(), 0.0);
        profile[3] = f64::NAN;
        assert!(PvPanel::new(Kw::new(2.0), profile).is_err());
        assert!(PvPanel::new(Kw::new(-2.0), TimeSeries::filled(day(), 0.0)).is_err());
    }

    #[test]
    fn none_panel_generates_nothing() {
        let panel = PvPanel::none(day());
        assert!(!panel.is_generating());
        assert_eq!(panel.total_generation(), Kwh::ZERO);
        assert_eq!(panel.rating(), Kw::ZERO);
    }

    #[test]
    fn derating_scales_profile() {
        let panel = PvPanel::new(Kw::new(4.0), clear_sky_profile(day(), Kw::new(4.0))).unwrap();
        let half = panel.derated(0.5);
        assert!((half.generation(12).value() - panel.generation(12).value() * 0.5).abs() < 1e-12);
        // Negative factors clamp to zero rather than generating negative power.
        assert!(!panel.derated(-1.0).is_generating());
    }

    #[test]
    fn total_generation_accumulates() {
        let panel = PvPanel::new(Kw::new(4.0), clear_sky_profile(day(), Kw::new(4.0))).unwrap();
        let by_hand: f64 = (0..24).map(|h| panel.generation(h).value()).sum();
        assert!((panel.total_generation().value() - by_hand).abs() < 1e-12);
        assert!(panel.total_generation().value() > 10.0);
    }

    #[test]
    fn multiday_profile_repeats_daily_shape() {
        let two_days = Horizon::hourly(48);
        let profile = clear_sky_profile(two_days, Kw::new(4.0));
        for h in 0..24 {
            assert!((profile[h] - profile[h + 24]).abs() < 1e-12);
        }
    }
}
