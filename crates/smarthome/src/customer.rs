//! A customer: appliances + battery + PV behind one smart meter (paper §2).

use serde::{Deserialize, Serialize};

use nms_types::{ApplianceId, CustomerId, Horizon, Kwh, MeterId, TimeSeries, ValidateError};

use crate::{Appliance, Battery, PvPanel};

/// One household `n ∈ N`: a set of schedulable appliances `A_n`, a battery,
/// and a PV panel, identified by its smart meter.
///
/// Construct with [`Customer::builder`].
///
/// # Examples
///
/// ```
/// use nms_smarthome::{Customer, Battery, PvPanel, Appliance, ApplianceKind, PowerLevels, TaskSpec};
/// use nms_types::{ApplianceId, CustomerId, Horizon, Kw, Kwh};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let horizon = Horizon::hourly_day();
/// let customer = Customer::builder(CustomerId::new(0), horizon)
///     .appliance(Appliance::new(
///         ApplianceId::new(0),
///         ApplianceKind::Dishwasher,
///         PowerLevels::on_off(Kw::new(1.0))?,
///         TaskSpec::new(Kwh::new(1.5), 18, 23)?,
///     ))
///     .battery(Battery::new(Kwh::new(8.0), Kwh::new(2.0))?)
///     .build()?;
/// assert_eq!(customer.appliances().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Customer {
    id: CustomerId,
    horizon: Horizon,
    appliances: Vec<Appliance>,
    battery: Battery,
    pv: PvPanel,
    base_load: TimeSeries<f64>,
}

impl Customer {
    /// Starts building a customer over `horizon`.
    pub fn builder(id: CustomerId, horizon: Horizon) -> CustomerBuilder {
        CustomerBuilder {
            id,
            horizon,
            appliances: Vec::new(),
            battery: Battery::none(),
            pv: None,
            base_load: None,
        }
    }

    /// The customer's identifier.
    #[inline]
    pub fn id(&self) -> CustomerId {
        self.id
    }

    /// The smart meter serving this home.
    #[inline]
    pub fn meter(&self) -> MeterId {
        self.id.meter()
    }

    /// The scheduling horizon this customer plans over.
    #[inline]
    pub fn horizon(&self) -> Horizon {
        self.horizon
    }

    /// The appliance set `A_n`.
    #[inline]
    pub fn appliances(&self) -> &[Appliance] {
        &self.appliances
    }

    /// Looks up an appliance by id.
    pub fn appliance(&self, id: ApplianceId) -> Option<&Appliance> {
        self.appliances.iter().find(|a| a.id() == id)
    }

    /// The home battery.
    #[inline]
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// The PV installation.
    #[inline]
    pub fn pv(&self) -> &PvPanel {
        &self.pv
    }

    /// Renewable generation `θ_n^h` at `slot`.
    #[inline]
    pub fn generation(&self, slot: usize) -> Kwh {
        self.pv.generation(slot)
    }

    /// The customer's inflexible (non-schedulable) consumption per slot —
    /// always-on and manually operated devices that no smart controller
    /// moves. The paper's `l_n^h` is the sum of this and the scheduled
    /// appliance draws.
    #[inline]
    pub fn base_load(&self) -> &TimeSeries<f64> {
        &self.base_load
    }

    /// Total task energy the customer must consume over the horizon
    /// (`Σ_m E_m`).
    pub fn total_task_energy(&self) -> Kwh {
        self.appliances.iter().map(|a| a.task().energy()).sum()
    }

    /// Returns `true` when the customer participates in net metering in a
    /// meaningful way: it can generate or store energy to trade back.
    pub fn can_trade(&self) -> bool {
        self.pv.is_generating() || self.battery.is_usable()
    }
}

/// Builder for [`Customer`]; validates everything against the horizon at
/// [`build`](CustomerBuilder::build) time.
#[derive(Debug, Clone)]
pub struct CustomerBuilder {
    id: CustomerId,
    horizon: Horizon,
    appliances: Vec<Appliance>,
    battery: Battery,
    pv: Option<PvPanel>,
    base_load: Option<TimeSeries<f64>>,
}

impl CustomerBuilder {
    /// Adds one appliance.
    pub fn appliance(mut self, appliance: Appliance) -> Self {
        self.appliances.push(appliance);
        self
    }

    /// Adds every appliance from an iterator.
    pub fn appliances(mut self, appliances: impl IntoIterator<Item = Appliance>) -> Self {
        self.appliances.extend(appliances);
        self
    }

    /// Sets the battery (defaults to no battery).
    pub fn battery(mut self, battery: Battery) -> Self {
        self.battery = battery;
        self
    }

    /// Sets the PV panel (defaults to no panel).
    pub fn pv(mut self, pv: PvPanel) -> Self {
        self.pv = Some(pv);
        self
    }

    /// Sets the inflexible consumption per slot (kWh; defaults to zero).
    pub fn base_load(mut self, base_load: TimeSeries<f64>) -> Self {
        self.base_load = Some(base_load);
        self
    }

    /// Finalizes the customer.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when any appliance fails validation against
    /// the horizon, two appliances share an id, or the PV profile is on a
    /// different horizon.
    pub fn build(self) -> Result<Customer, ValidateError> {
        for appliance in &self.appliances {
            appliance.validate(self.horizon)?;
        }
        let mut ids: Vec<ApplianceId> = self.appliances.iter().map(|a| a.id()).collect();
        ids.sort();
        if ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(ValidateError::new(format!(
                "duplicate appliance id in {}",
                self.id
            )));
        }
        let pv = self.pv.unwrap_or_else(|| PvPanel::none(self.horizon));
        if pv.profile().horizon().slots() != self.horizon.slots() {
            return Err(ValidateError::new(format!(
                "pv profile has {} slots but customer horizon has {}",
                pv.profile().horizon().slots(),
                self.horizon.slots()
            )));
        }
        let base_load = self
            .base_load
            .unwrap_or_else(|| TimeSeries::filled(self.horizon, 0.0));
        if base_load.len() != self.horizon.slots() {
            return Err(ValidateError::new(format!(
                "base load has {} slots but customer horizon has {}",
                base_load.len(),
                self.horizon.slots()
            )));
        }
        if base_load.iter().any(|&v| !v.is_finite() || v < 0.0) {
            return Err(ValidateError::new(
                "base load must be finite and non-negative in every slot",
            ));
        }
        Ok(Customer {
            id: self.id,
            horizon: self.horizon,
            appliances: self.appliances,
            battery: self.battery,
            pv,
            base_load,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{clear_sky_profile, ApplianceKind, PowerLevels, TaskSpec};
    use nms_types::Kw;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    fn appliance(id: usize, energy: f64, start: usize, deadline: usize) -> Appliance {
        Appliance::new(
            ApplianceId::new(id),
            ApplianceKind::Dishwasher,
            PowerLevels::on_off(Kw::new(2.0)).unwrap(),
            TaskSpec::new(Kwh::new(energy), start, deadline).unwrap(),
        )
    }

    #[test]
    fn builder_assembles_customer() {
        let customer = Customer::builder(CustomerId::new(3), day())
            .appliance(appliance(0, 2.0, 8, 20))
            .appliance(appliance(1, 1.0, 0, 23))
            .battery(Battery::new(Kwh::new(5.0), Kwh::ZERO).unwrap())
            .pv(PvPanel::new(Kw::new(3.0), clear_sky_profile(day(), Kw::new(3.0))).unwrap())
            .build()
            .unwrap();
        assert_eq!(customer.id(), CustomerId::new(3));
        assert_eq!(customer.meter(), CustomerId::new(3).meter());
        assert_eq!(customer.appliances().len(), 2);
        assert_eq!(customer.total_task_energy(), Kwh::new(3.0));
        assert!(customer.can_trade());
        assert!(customer.appliance(ApplianceId::new(1)).is_some());
        assert!(customer.appliance(ApplianceId::new(9)).is_none());
    }

    #[test]
    fn builder_rejects_duplicate_appliance_ids() {
        let err = Customer::builder(CustomerId::new(0), day())
            .appliance(appliance(0, 1.0, 0, 23))
            .appliance(appliance(0, 1.0, 0, 23))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate appliance id"));
    }

    #[test]
    fn builder_rejects_invalid_appliance() {
        let result = Customer::builder(CustomerId::new(0), day())
            .appliance(appliance(0, 100.0, 0, 2)) // infeasible energy
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn builder_rejects_mismatched_pv_horizon() {
        let other = Horizon::hourly(48);
        let result = Customer::builder(CustomerId::new(0), day())
            .pv(PvPanel::new(Kw::new(3.0), clear_sky_profile(other, Kw::new(3.0))).unwrap())
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn customer_without_der_cannot_trade() {
        let customer = Customer::builder(CustomerId::new(0), day())
            .appliance(appliance(0, 1.0, 0, 23))
            .build()
            .unwrap();
        assert!(!customer.can_trade());
        assert_eq!(customer.generation(12), Kwh::ZERO);
    }

    #[test]
    fn appliances_bulk_add() {
        let customer = Customer::builder(CustomerId::new(0), day())
            .appliances((0..4).map(|i| appliance(i, 1.0, 0, 23)))
            .build()
            .unwrap();
        assert_eq!(customer.appliances().len(), 4);
    }
}
