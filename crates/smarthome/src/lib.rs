//! The smart home model of the DAC'15 net-metering paper (§2): appliances
//! with discrete power levels and deadline-constrained tasks, home batteries,
//! rooftop PV panels, customers that bundle all three behind a smart meter,
//! and the community that aggregates `N` customers into a grid-level load.
//!
//! This crate is the *data model* substrate: it knows what a feasible
//! schedule looks like and how to measure load shapes (PAR), but contains no
//! optimization. Schedulers live in `nms-solver`; detection in `nms-core`.
//!
//! # Examples
//!
//! ```
//! use nms_smarthome::{Appliance, ApplianceKind, PowerLevels, TaskSpec};
//! use nms_types::{ApplianceId, Horizon, Kw, Kwh};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let horizon = Horizon::hourly_day();
//! let washer = Appliance::new(
//!     ApplianceId::new(0),
//!     ApplianceKind::WashingMachine,
//!     PowerLevels::new(vec![Kw::new(0.5), Kw::new(1.0)])?,
//!     TaskSpec::new(Kwh::new(2.0), 8, 20)?,
//! );
//! washer.validate(horizon)?;
//! assert!(washer.is_schedulable(horizon));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod appliance;
mod battery;
mod catalog;
mod community;
mod customer;
mod load;
mod pv;
mod schedule;

pub use appliance::{Appliance, ApplianceKind, PowerLevels, TaskSpec};
pub use battery::Battery;
pub use catalog::{catalog_appliance, AppliancePreset, APPLIANCE_PRESETS};
pub use community::Community;
pub use customer::{Customer, CustomerBuilder};
pub use load::LoadProfile;
pub use pv::{clear_sky_profile, PvPanel};
pub use schedule::{ApplianceSchedule, CommunitySchedule, CustomerSchedule, ScheduleError};
