//! Grid-level load profiles and the peak-to-average ratio (PAR) metric.

use std::fmt;

use serde::{Deserialize, Serialize};

use nms_types::{Horizon, HorizonMismatchError, Kwh, TimeSeries};

/// A per-slot energy demand profile (kWh per slot) — either one customer's
/// consumption `l_n^h` or the community aggregate `L_h`.
///
/// The paper's grid-stability metric is the peak-to-average ratio
/// [`LoadProfile::par`]; pricing cyberattacks are measured by how much they
/// raise it (§4, §5).
///
/// # Examples
///
/// ```
/// use nms_smarthome::LoadProfile;
/// use nms_types::{Horizon, TimeSeries};
///
/// let mut series = TimeSeries::filled(Horizon::hourly_day(), 1.0);
/// series[18] = 3.0; // evening peak
/// let load = LoadProfile::new(series);
/// assert!(load.par().unwrap() > 1.0);
/// assert_eq!(load.peak_slot(), 18);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    series: TimeSeries<f64>,
}

impl LoadProfile {
    /// Wraps a per-slot energy series (kWh per slot).
    pub fn new(series: TimeSeries<f64>) -> Self {
        Self { series }
    }

    /// A flat-zero profile over `horizon`.
    pub fn zero(horizon: Horizon) -> Self {
        Self {
            series: TimeSeries::filled(horizon, 0.0),
        }
    }

    /// The horizon this profile is aligned to.
    #[inline]
    pub fn horizon(&self) -> Horizon {
        self.series.horizon()
    }

    /// The underlying per-slot series.
    #[inline]
    pub fn series(&self) -> &TimeSeries<f64> {
        &self.series
    }

    /// Consumes the profile, returning the underlying series.
    #[inline]
    pub fn into_series(self) -> TimeSeries<f64> {
        self.series
    }

    /// Energy demanded at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the horizon.
    #[inline]
    pub fn at(&self, slot: usize) -> Kwh {
        Kwh::new(self.series[slot])
    }

    /// Total energy over the horizon.
    pub fn total(&self) -> Kwh {
        Kwh::new(self.series.total())
    }

    /// Mean per-slot energy.
    pub fn mean(&self) -> Kwh {
        Kwh::new(self.series.mean())
    }

    /// Largest per-slot energy.
    pub fn peak(&self) -> Kwh {
        Kwh::new(self.series.peak())
    }

    /// Slot index of the peak (first on ties).
    pub fn peak_slot(&self) -> usize {
        self.series.peak_slot()
    }

    /// Peak-to-average ratio; `None` when the mean is not strictly positive.
    pub fn par(&self) -> Option<f64> {
        self.series.par()
    }

    /// Slot-wise sum with another profile (e.g. accumulating customers into
    /// a community load).
    ///
    /// # Errors
    ///
    /// Returns [`HorizonMismatchError`] on differing slot counts.
    pub fn add(&self, other: &Self) -> Result<Self, HorizonMismatchError> {
        Ok(Self {
            series: self.series.add(&other.series)?,
        })
    }

    /// Aggregates many profiles into one (`L_h = Σ_n l_n^h`).
    ///
    /// # Errors
    ///
    /// Returns [`HorizonMismatchError`] if any profile disagrees on slot
    /// count.
    pub fn aggregate<'a>(
        horizon: Horizon,
        profiles: impl IntoIterator<Item = &'a LoadProfile>,
    ) -> Result<Self, HorizonMismatchError> {
        let mut acc = TimeSeries::filled(horizon, 0.0);
        for p in profiles {
            acc = acc.add(&p.series)?;
        }
        Ok(Self { series: acc })
    }
}

impl From<TimeSeries<f64>> for LoadProfile {
    fn from(series: TimeSeries<f64>) -> Self {
        Self::new(series)
    }
}

impl fmt::Display for LoadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.par() {
            Some(par) => write!(
                f,
                "load: total {:.2}, peak {:.2} @ slot {}, PAR {:.4}",
                self.total(),
                self.peak(),
                self.peak_slot(),
                par
            ),
            None => write!(f, "load: empty (total {:.2})", self.total()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    #[test]
    fn par_matches_hand_computation() {
        let mut series = TimeSeries::filled(day(), 2.0);
        series[17] = 6.0;
        let load = LoadProfile::new(series);
        let mean = (2.0 * 23.0 + 6.0) / 24.0;
        assert!((load.par().unwrap() - 6.0 / mean).abs() < 1e-12);
    }

    #[test]
    fn zero_profile_has_no_par() {
        assert!(LoadProfile::zero(day()).par().is_none());
    }

    #[test]
    fn aggregate_sums_customers() {
        let profiles: Vec<LoadProfile> = (0..10)
            .map(|i| {
                let mut s = TimeSeries::filled(day(), 1.0);
                s[i] += 1.0;
                LoadProfile::new(s)
            })
            .collect();
        let total = LoadProfile::aggregate(day(), &profiles).unwrap();
        assert!((total.total().value() - (240.0 + 10.0)).abs() < 1e-9);
        assert!((total.at(0).value() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn add_checks_horizons() {
        let a = LoadProfile::zero(day());
        let b = LoadProfile::zero(Horizon::hourly(48));
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn display_mentions_par() {
        let mut series = TimeSeries::filled(day(), 1.0);
        series[7] = 2.0;
        let text = LoadProfile::new(series).to_string();
        assert!(text.contains("PAR"));
        assert!(LoadProfile::zero(day()).to_string().contains("empty"));
    }

    proptest! {
        #[test]
        fn prop_aggregate_par_not_above_max_member_count(
            values in proptest::collection::vec(0.1_f64..10.0, 24)
        ) {
            // Aggregating identical copies never changes PAR.
            let p = LoadProfile::new(TimeSeries::from_values(day(), values).unwrap());
            let agg = LoadProfile::aggregate(day(), vec![&p, &p, &p]).unwrap();
            prop_assert!((agg.par().unwrap() - p.par().unwrap()).abs() < 1e-9);
        }

        #[test]
        fn prop_peak_at_least_mean(values in proptest::collection::vec(0.0_f64..10.0, 24)) {
            let p = LoadProfile::new(TimeSeries::from_values(day(), values).unwrap());
            prop_assert!(p.peak().value() >= p.mean().value() - 1e-12);
        }
    }
}
