//! Feasible schedules: the decision variables of the paper's game.
//!
//! A schedule fixes, per slot, each appliance's energy draw (`x_m^h e_m^h`),
//! the battery state of charge `b_n^h`, and — derived through the battery
//! balance (Eqn 1) — the grid trading amount `y_n^h`:
//!
//! ```text
//! b^{h+1} = b^h + θ^h + y^h − l^h   ⇒   y^h = l^h + b^{h+1} − b^h − θ^h
//! ```
//!
//! Positive `y` purchases energy from the grid; negative `y` sells it back
//! (net metering).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use nms_types::{ApplianceId, CustomerId, Horizon, Kwh, TimeSeries, ValidateError};

use crate::{Appliance, Customer, LoadProfile};

/// Numerical tolerance for feasibility checks on schedules.
pub(crate) const FEASIBILITY_TOL: f64 = 1e-6;

/// Why a schedule was rejected as infeasible.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The schedule's slot count differs from the horizon's.
    HorizonMismatch {
        /// Slots the horizon expects.
        expected: usize,
        /// Slots the schedule supplied.
        actual: usize,
    },
    /// Energy drawn outside the appliance's `[α, β]` window.
    OutsideWindow {
        /// The offending appliance.
        appliance: ApplianceId,
        /// The slot where energy was drawn.
        slot: usize,
    },
    /// Per-slot energy exceeds the appliance's maximum power level.
    ExceedsSlotCap {
        /// The offending appliance.
        appliance: ApplianceId,
        /// The slot that overflows.
        slot: usize,
        /// Energy requested in the slot.
        requested: Kwh,
        /// Maximum the appliance can deliver per slot.
        cap: Kwh,
    },
    /// Total scheduled energy differs from the task requirement `E_m`.
    EnergyMismatch {
        /// The offending appliance.
        appliance: ApplianceId,
        /// Task energy `E_m`.
        required: Kwh,
        /// Scheduled total.
        scheduled: Kwh,
    },
    /// The battery trajectory violates the battery's constraints.
    Battery(ValidateError),
    /// The set of appliance schedules does not match the customer's
    /// appliance set.
    ApplianceSetMismatch {
        /// The customer whose schedule was assembled.
        customer: CustomerId,
    },
    /// A scheduled energy value was negative or non-finite.
    InvalidEnergy {
        /// The offending appliance.
        appliance: ApplianceId,
        /// The slot with the invalid value.
        slot: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::HorizonMismatch { expected, actual } => {
                write!(f, "schedule has {actual} slots, horizon has {expected}")
            }
            Self::OutsideWindow { appliance, slot } => {
                write!(
                    f,
                    "{appliance} draws energy outside its window at slot {slot}"
                )
            }
            Self::ExceedsSlotCap {
                appliance,
                slot,
                requested,
                cap,
            } => write!(
                f,
                "{appliance} requests {requested:.4} at slot {slot}, above per-slot cap {cap:.4}"
            ),
            Self::EnergyMismatch {
                appliance,
                required,
                scheduled,
            } => write!(
                f,
                "{appliance} scheduled {scheduled:.4} but task requires {required:.4}"
            ),
            Self::Battery(err) => write!(f, "battery trajectory rejected: {err}"),
            Self::ApplianceSetMismatch { customer } => {
                write!(
                    f,
                    "appliance schedules do not match the appliance set of {customer}"
                )
            }
            Self::InvalidEnergy { appliance, slot } => {
                write!(
                    f,
                    "{appliance} has a negative or non-finite energy at slot {slot}"
                )
            }
        }
    }
}

impl Error for ScheduleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Battery(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ValidateError> for ScheduleError {
    fn from(err: ValidateError) -> Self {
        Self::Battery(err)
    }
}

/// The per-slot energy draw of one appliance (`x_m^h · e_m^h`, in kWh).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplianceSchedule {
    appliance: ApplianceId,
    energy: TimeSeries<f64>,
}

impl ApplianceSchedule {
    /// Validates `energy` (kWh per slot) against `appliance`'s task and
    /// power levels on `horizon` and wraps it.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] naming the first violated constraint:
    /// wrong slot count, negative energy, draw outside the window, per-slot
    /// draw above the maximum power level, or total energy different from
    /// `E_m`.
    pub fn new(
        appliance: &Appliance,
        horizon: Horizon,
        energy: TimeSeries<f64>,
    ) -> Result<Self, ScheduleError> {
        if energy.len() != horizon.slots() {
            return Err(ScheduleError::HorizonMismatch {
                expected: horizon.slots(),
                actual: energy.len(),
            });
        }
        let cap = appliance.max_slot_energy(horizon);
        let mut total = 0.0;
        for (slot, &e) in energy.iter().enumerate() {
            if !e.is_finite() || e < -FEASIBILITY_TOL {
                return Err(ScheduleError::InvalidEnergy {
                    appliance: appliance.id(),
                    slot,
                });
            }
            if e > FEASIBILITY_TOL && !appliance.task().allows_slot(slot) {
                return Err(ScheduleError::OutsideWindow {
                    appliance: appliance.id(),
                    slot,
                });
            }
            if e > cap.value() + FEASIBILITY_TOL {
                return Err(ScheduleError::ExceedsSlotCap {
                    appliance: appliance.id(),
                    slot,
                    requested: Kwh::new(e),
                    cap,
                });
            }
            total += e;
        }
        let required = appliance.task().energy().value();
        if (total - required).abs() > FEASIBILITY_TOL.max(required * 1e-6) {
            return Err(ScheduleError::EnergyMismatch {
                appliance: appliance.id(),
                required: Kwh::new(required),
                scheduled: Kwh::new(total),
            });
        }
        Ok(Self {
            appliance: appliance.id(),
            energy,
        })
    }

    /// The scheduled appliance's id.
    #[inline]
    pub fn appliance(&self) -> ApplianceId {
        self.appliance
    }

    /// Energy drawn at `slot`.
    #[inline]
    pub fn at(&self, slot: usize) -> Kwh {
        Kwh::new(self.energy[slot])
    }

    /// The per-slot energy series (kWh per slot).
    #[inline]
    pub fn energy(&self) -> &TimeSeries<f64> {
        &self.energy
    }
}

/// A complete feasible plan for one customer: appliance draws, battery
/// trajectory, and the derived load `l_n^h` (inflexible base load plus
/// scheduled appliance draws) and trading `y_n^h` series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomerSchedule {
    customer: CustomerId,
    appliance_schedules: Vec<ApplianceSchedule>,
    load: LoadProfile,
    battery: Vec<Kwh>,
    trading: TimeSeries<f64>,
}

impl CustomerSchedule {
    /// Assembles and validates a customer's schedule.
    ///
    /// `battery_trajectory` holds `b^0..b^H` (`H + 1` entries); it must start
    /// at the customer's configured initial charge. The trading series is
    /// derived via the battery balance of Eqn 1.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] if the appliance schedules don't cover
    /// exactly the customer's appliance set, any appliance schedule is
    /// infeasible, or the battery trajectory is invalid.
    pub fn new(
        customer: &Customer,
        appliance_schedules: Vec<ApplianceSchedule>,
        battery_trajectory: Vec<Kwh>,
    ) -> Result<Self, ScheduleError> {
        let horizon = customer.horizon();
        // The schedules must cover exactly the customer's appliances.
        if appliance_schedules.len() != customer.appliances().len() {
            return Err(ScheduleError::ApplianceSetMismatch {
                customer: customer.id(),
            });
        }
        for schedule in &appliance_schedules {
            let appliance = customer.appliance(schedule.appliance()).ok_or(
                ScheduleError::ApplianceSetMismatch {
                    customer: customer.id(),
                },
            )?;
            // Revalidate: the schedule may have been built against another
            // appliance carrying the same id.
            ApplianceSchedule::new(appliance, horizon, schedule.energy().clone())?;
        }
        let mut ids: Vec<ApplianceId> = appliance_schedules.iter().map(|s| s.appliance()).collect();
        ids.sort();
        if ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(ScheduleError::ApplianceSetMismatch {
                customer: customer.id(),
            });
        }

        if battery_trajectory.len() != horizon.slots() + 1 {
            return Err(ScheduleError::HorizonMismatch {
                expected: horizon.slots() + 1,
                actual: battery_trajectory.len(),
            });
        }
        customer
            .battery()
            .validate_trajectory(&battery_trajectory)?;

        let load = LoadProfile::new(TimeSeries::from_fn(horizon, |slot| {
            customer.base_load()[slot]
                + appliance_schedules
                    .iter()
                    .map(|s| s.at(slot).value())
                    .sum::<f64>()
        }));
        let trading = TimeSeries::from_fn(horizon, |slot| {
            // y^h = l^h + b^{h+1} − b^h − θ^h  (Eqn 1 rearranged)
            load.at(slot).value() + battery_trajectory[slot + 1].value()
                - battery_trajectory[slot].value()
                - customer.generation(slot).value()
        });

        Ok(Self {
            customer: customer.id(),
            appliance_schedules,
            load,
            battery: battery_trajectory,
            trading,
        })
    }

    /// A schedule for a customer that never uses its battery (the state of
    /// charge stays at the initial level throughout).
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`CustomerSchedule::new`].
    pub fn with_idle_battery(
        customer: &Customer,
        appliance_schedules: Vec<ApplianceSchedule>,
    ) -> Result<Self, ScheduleError> {
        let flat = vec![customer.battery().initial_charge(); customer.horizon().slots() + 1];
        Self::new(customer, appliance_schedules, flat)
    }

    /// The scheduled customer's id.
    #[inline]
    pub fn customer(&self) -> CustomerId {
        self.customer
    }

    /// The per-appliance schedules.
    #[inline]
    pub fn appliance_schedules(&self) -> &[ApplianceSchedule] {
        &self.appliance_schedules
    }

    /// The customer's consumption profile `l_n^h`.
    #[inline]
    pub fn load(&self) -> &LoadProfile {
        &self.load
    }

    /// The battery state-of-charge trajectory `b^0..b^H`.
    #[inline]
    pub fn battery(&self) -> &[Kwh] {
        &self.battery
    }

    /// The grid trading series `y_n^h` (kWh per slot; negative = sold).
    #[inline]
    pub fn trading(&self) -> &TimeSeries<f64> {
        &self.trading
    }

    /// Total energy purchased from the grid (positive trades only).
    pub fn total_purchased(&self) -> Kwh {
        Kwh::new(self.trading.iter().filter(|&&y| y > 0.0).sum())
    }

    /// Total energy sold back to the grid (absolute value of negative
    /// trades).
    pub fn total_sold(&self) -> Kwh {
        Kwh::new(-self.trading.iter().filter(|&&y| y < 0.0).sum::<f64>())
    }
}

/// The community's joint schedule: every customer's plan plus the aggregate
/// grid demand `Σ_n y_n^h` and community load `L_h = Σ_n l_n^h`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommunitySchedule {
    horizon: Horizon,
    schedules: Vec<CustomerSchedule>,
    grid_demand: TimeSeries<f64>,
    load: LoadProfile,
}

impl CommunitySchedule {
    /// Aggregates per-customer schedules. `schedules[i]` must belong to
    /// customer `i`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::ApplianceSetMismatch`] when schedules are
    /// out of order, or [`ScheduleError::HorizonMismatch`] when any schedule
    /// is on a different horizon.
    pub fn new(horizon: Horizon, schedules: Vec<CustomerSchedule>) -> Result<Self, ScheduleError> {
        for (index, schedule) in schedules.iter().enumerate() {
            if schedule.customer().index() != index {
                return Err(ScheduleError::ApplianceSetMismatch {
                    customer: schedule.customer(),
                });
            }
            if schedule.trading().len() != horizon.slots() {
                return Err(ScheduleError::HorizonMismatch {
                    expected: horizon.slots(),
                    actual: schedule.trading().len(),
                });
            }
        }
        let grid_demand = TimeSeries::from_fn(horizon, |slot| {
            schedules.iter().map(|s| s.trading()[slot]).sum()
        });
        let load = LoadProfile::new(TimeSeries::from_fn(horizon, |slot| {
            schedules.iter().map(|s| s.load().at(slot).value()).sum()
        }));
        Ok(Self {
            horizon,
            schedules,
            grid_demand,
            load,
        })
    }

    /// The horizon the community planned over.
    #[inline]
    pub fn horizon(&self) -> Horizon {
        self.horizon
    }

    /// Per-customer schedules, indexed by customer.
    #[inline]
    pub fn customer_schedules(&self) -> &[CustomerSchedule] {
        &self.schedules
    }

    /// The net energy the community draws from the utility per slot
    /// (`Σ_n y_n^h`; may be negative under heavy PV).
    #[inline]
    pub fn grid_demand(&self) -> &TimeSeries<f64> {
        &self.grid_demand
    }

    /// The community consumption `L_h` (always non-negative).
    #[inline]
    pub fn load(&self) -> &LoadProfile {
        &self.load
    }

    /// Grid demand clamped at zero, as seen by generation dispatch: the grid
    /// cannot be "negatively generated", excess community energy is absorbed.
    pub fn grid_demand_clamped(&self) -> TimeSeries<f64> {
        self.grid_demand.map(|&y| y.max(0.0))
    }

    /// PAR of the *grid demand* profile (clamped at zero), the quantity the
    /// paper's detection compares.
    pub fn grid_par(&self) -> Option<f64> {
        self.grid_demand_clamped().par()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApplianceKind, Battery, PowerLevels, PvPanel, TaskSpec};
    use nms_types::Kw;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    fn simple_appliance(id: usize) -> Appliance {
        Appliance::new(
            ApplianceId::new(id),
            ApplianceKind::Dishwasher,
            PowerLevels::on_off(Kw::new(1.0)).unwrap(),
            TaskSpec::new(Kwh::new(2.0), 8, 12).unwrap(),
        )
    }

    fn simple_customer(id: usize) -> Customer {
        Customer::builder(CustomerId::new(id), day())
            .appliance(simple_appliance(0))
            .battery(Battery::new(Kwh::new(4.0), Kwh::new(1.0)).unwrap())
            .build()
            .unwrap()
    }

    fn feasible_energy() -> TimeSeries<f64> {
        let mut e = TimeSeries::filled(day(), 0.0);
        e[8] = 1.0;
        e[9] = 1.0;
        e
    }

    #[test]
    fn appliance_schedule_accepts_feasible_plan() {
        let appliance = simple_appliance(0);
        let schedule = ApplianceSchedule::new(&appliance, day(), feasible_energy()).unwrap();
        assert_eq!(schedule.at(8), Kwh::new(1.0));
        assert_eq!(schedule.at(0), Kwh::ZERO);
    }

    #[test]
    fn appliance_schedule_rejects_outside_window() {
        let appliance = simple_appliance(0);
        let mut e = TimeSeries::filled(day(), 0.0);
        e[5] = 1.0;
        e[8] = 1.0;
        let err = ApplianceSchedule::new(&appliance, day(), e).unwrap_err();
        assert!(matches!(err, ScheduleError::OutsideWindow { slot: 5, .. }));
    }

    #[test]
    fn appliance_schedule_rejects_overload() {
        let appliance = simple_appliance(0);
        let mut e = TimeSeries::filled(day(), 0.0);
        e[8] = 2.0; // cap is 1 kWh per hourly slot at 1 kW
        let err = ApplianceSchedule::new(&appliance, day(), e).unwrap_err();
        assert!(matches!(err, ScheduleError::ExceedsSlotCap { slot: 8, .. }));
    }

    #[test]
    fn appliance_schedule_rejects_energy_mismatch() {
        let appliance = simple_appliance(0);
        let mut e = TimeSeries::filled(day(), 0.0);
        e[8] = 1.0; // only half the task energy
        let err = ApplianceSchedule::new(&appliance, day(), e).unwrap_err();
        assert!(matches!(err, ScheduleError::EnergyMismatch { .. }));
    }

    #[test]
    fn appliance_schedule_rejects_negative_or_nan() {
        let appliance = simple_appliance(0);
        let mut e = TimeSeries::filled(day(), 0.0);
        e[8] = -1.0;
        assert!(matches!(
            ApplianceSchedule::new(&appliance, day(), e).unwrap_err(),
            ScheduleError::InvalidEnergy { .. }
        ));
        let mut e = TimeSeries::filled(day(), 0.0);
        e[8] = f64::NAN;
        assert!(ApplianceSchedule::new(&appliance, day(), e).is_err());
    }

    #[test]
    fn customer_schedule_derives_trading_via_eqn1() {
        let customer = simple_customer(0);
        let appliance = simple_appliance(0);
        let schedule = ApplianceSchedule::new(&appliance, day(), feasible_energy()).unwrap();
        // Battery: charge 1 kWh at slot 0, discharge it at slot 8.
        let mut battery = vec![Kwh::new(1.0); 25];
        for b in battery.iter_mut().take(9).skip(1) {
            *b = Kwh::new(2.0);
        }
        let plan = CustomerSchedule::new(&customer, vec![schedule], battery).unwrap();
        // Slot 0: l=0, Δb=+1, θ=0 ⇒ y=1 (buy to charge).
        assert!((plan.trading()[0] - 1.0).abs() < 1e-9);
        // Slot 8: l=1, Δb=−1 ⇒ y=0 (battery feeds the appliance).
        assert!((plan.trading()[8]).abs() < 1e-9);
        // Slot 9: l=1, Δb=0 ⇒ y=1.
        assert!((plan.trading()[9] - 1.0).abs() < 1e-9);
        assert_eq!(plan.total_purchased(), Kwh::new(2.0));
        assert_eq!(plan.total_sold(), Kwh::ZERO);
    }

    #[test]
    fn negative_trading_counts_as_sold() {
        let horizon = day();
        let pv = PvPanel::new(
            Kw::new(2.0),
            TimeSeries::from_fn(horizon, |h| if h == 12 { 2.0 } else { 0.0 }),
        )
        .unwrap();
        let customer = Customer::builder(CustomerId::new(0), horizon)
            .pv(pv)
            .build()
            .unwrap();
        let plan = CustomerSchedule::with_idle_battery(&customer, vec![]).unwrap();
        // No load, 2 kWh PV at noon: all of it is sold.
        assert!((plan.trading()[12] + 2.0).abs() < 1e-9);
        assert_eq!(plan.total_sold(), Kwh::new(2.0));
        assert_eq!(plan.total_purchased(), Kwh::ZERO);
    }

    #[test]
    fn customer_schedule_rejects_wrong_appliance_set() {
        let customer = simple_customer(0);
        let err = CustomerSchedule::with_idle_battery(&customer, vec![]).unwrap_err();
        assert!(matches!(err, ScheduleError::ApplianceSetMismatch { .. }));
    }

    #[test]
    fn customer_schedule_rejects_bad_battery_trajectory() {
        let customer = simple_customer(0);
        let appliance = simple_appliance(0);
        let schedule = ApplianceSchedule::new(&appliance, day(), feasible_energy()).unwrap();
        // Wrong length.
        let err = CustomerSchedule::new(&customer, vec![schedule.clone()], vec![Kwh::new(1.0); 10])
            .unwrap_err();
        assert!(matches!(err, ScheduleError::HorizonMismatch { .. }));
        // Out of capacity.
        let mut trajectory = vec![Kwh::new(1.0); 25];
        trajectory[5] = Kwh::new(99.0);
        let err = CustomerSchedule::new(&customer, vec![schedule], trajectory).unwrap_err();
        assert!(matches!(err, ScheduleError::Battery(_)));
    }

    #[test]
    fn community_schedule_aggregates() {
        let customers: Vec<Customer> = (0..3).map(simple_customer).collect();
        let schedules: Vec<CustomerSchedule> = customers
            .iter()
            .map(|c| {
                let s =
                    ApplianceSchedule::new(&simple_appliance(0), day(), feasible_energy()).unwrap();
                CustomerSchedule::with_idle_battery(c, vec![s]).unwrap()
            })
            .collect();
        let community = CommunitySchedule::new(day(), schedules).unwrap();
        assert!((community.load().at(8).value() - 3.0).abs() < 1e-9);
        assert!((community.grid_demand()[8] - 3.0).abs() < 1e-9);
        assert!(community.grid_par().is_some());
    }

    #[test]
    fn community_schedule_rejects_out_of_order() {
        let c0 = simple_customer(0);
        let s0 = CustomerSchedule::with_idle_battery(
            &c0,
            vec![ApplianceSchedule::new(&simple_appliance(0), day(), feasible_energy()).unwrap()],
        )
        .unwrap();
        let err = CommunitySchedule::new(day(), vec![s0.clone(), s0]).unwrap_err();
        assert!(matches!(err, ScheduleError::ApplianceSetMismatch { .. }));
    }

    #[test]
    fn grid_demand_clamps_negative_exports() {
        let horizon = day();
        let pv = PvPanel::new(
            Kw::new(2.0),
            TimeSeries::from_fn(horizon, |h| if h == 12 { 2.0 } else { 0.0 }),
        )
        .unwrap();
        let customer = Customer::builder(CustomerId::new(0), horizon)
            .pv(pv)
            .build()
            .unwrap();
        let plan = CustomerSchedule::with_idle_battery(&customer, vec![]).unwrap();
        let community = CommunitySchedule::new(horizon, vec![plan]).unwrap();
        assert!(community.grid_demand()[12] < 0.0);
        assert_eq!(community.grid_demand_clamped()[12], 0.0);
    }

    #[test]
    fn schedule_error_display() {
        let err = ScheduleError::EnergyMismatch {
            appliance: ApplianceId::new(2),
            required: Kwh::new(2.0),
            scheduled: Kwh::new(1.0),
        };
        let text = err.to_string();
        assert!(text.contains("appliance-2"));
        assert!(text.contains("requires"));
    }
}
