//! Schedulable home appliances (paper §2.1).
//!
//! Each appliance `m` owns a set of discrete power levels `X_m`, must consume
//! exactly `E_m` kWh over the horizon, and may only run inside its time
//! window `[α_m, β_m]` (inclusive slot indices).

use std::fmt;

use serde::{Deserialize, Serialize};

use nms_types::{ApplianceId, Horizon, Kw, Kwh, ValidateError};

/// The sorted, deduplicated set of power levels `X_m` an appliance can run
/// at, always including the implicit "off" level 0 kW.
///
/// # Examples
///
/// ```
/// use nms_smarthome::PowerLevels;
/// use nms_types::Kw;
///
/// let levels = PowerLevels::new(vec![Kw::new(1.0), Kw::new(0.5), Kw::new(1.0)])?;
/// assert_eq!(levels.len(), 3); // off, 0.5, 1.0
/// assert_eq!(levels.max(), Kw::new(1.0));
/// # Ok::<(), nms_types::ValidateError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerLevels {
    levels: Vec<Kw>,
}

impl PowerLevels {
    /// Builds a level set from arbitrary kW values; the off level (0 kW) is
    /// inserted automatically and duplicates are removed.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] if any level is negative or non-finite, or
    /// if no strictly positive level is present (the appliance could never
    /// consume energy).
    pub fn new(levels: Vec<Kw>) -> Result<Self, ValidateError> {
        for level in &levels {
            if !level.is_finite() {
                return Err(ValidateError::new("power level must be finite"));
            }
            if !level.is_non_negative() {
                return Err(ValidateError::new(format!(
                    "power level {level} is negative"
                )));
            }
        }
        let mut all: Vec<Kw> = levels;
        all.push(Kw::ZERO);
        all.sort_by(|a, b| a.partial_cmp(b).expect("levels checked finite"));
        all.dedup_by(|a, b| (a.value() - b.value()).abs() < 1e-12);
        if all.len() < 2 {
            return Err(ValidateError::new(
                "power level set needs at least one positive level",
            ));
        }
        Ok(Self { levels: all })
    }

    /// A single-speed appliance: either off or running at `on` kW.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] if `on` is not strictly positive and finite.
    pub fn on_off(on: Kw) -> Result<Self, ValidateError> {
        if !(on.is_finite() && on.value() > 0.0) {
            return Err(ValidateError::new("on level must be positive and finite"));
        }
        Self::new(vec![on])
    }

    /// `k` evenly spaced levels from `max/k` up to `max` (plus off).
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] if `k == 0` or `max` is not positive finite.
    pub fn stepped(max: Kw, k: usize) -> Result<Self, ValidateError> {
        if k == 0 {
            return Err(ValidateError::new("need at least one step"));
        }
        if !(max.is_finite() && max.value() > 0.0) {
            return Err(ValidateError::new("max level must be positive and finite"));
        }
        let levels = (1..=k).map(|i| max * (i as f64 / k as f64)).collect();
        Self::new(levels)
    }

    /// Number of levels, counting the off level.
    #[inline]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Always `false`: the off level is always present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Levels in ascending order, starting with 0 kW.
    #[inline]
    pub fn as_slice(&self) -> &[Kw] {
        &self.levels
    }

    /// Iterator over the levels in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, Kw> {
        self.levels.iter()
    }

    /// The largest available power level.
    #[inline]
    pub fn max(&self) -> Kw {
        *self.levels.last().expect("at least off + one level")
    }

    /// The smallest strictly positive level.
    #[inline]
    pub fn min_positive(&self) -> Kw {
        self.levels[1]
    }

    /// Returns `true` when `level` (in kW) is a member of the set, within
    /// tolerance `1e-9`.
    pub fn contains(&self, level: Kw) -> bool {
        self.levels
            .iter()
            .any(|l| (l.value() - level.value()).abs() < 1e-9)
    }
}

impl<'a> IntoIterator for &'a PowerLevels {
    type Item = &'a Kw;
    type IntoIter = std::slice::Iter<'a, Kw>;
    fn into_iter(self) -> Self::IntoIter {
        self.levels.iter()
    }
}

/// The task constraint of an appliance (paper §2.1): consume exactly
/// [`energy`](Self::energy) kWh, running no earlier than
/// [`start`](Self::start) and finishing no later than
/// [`deadline`](Self::deadline) (both inclusive slot indices).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    energy: Kwh,
    start: usize,
    deadline: usize,
}

impl TaskSpec {
    /// Creates a task requiring `energy` kWh within slots
    /// `[start, deadline]`.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] if the energy is negative or non-finite, or
    /// if `deadline < start`.
    pub fn new(energy: Kwh, start: usize, deadline: usize) -> Result<Self, ValidateError> {
        if !energy.is_finite() || !energy.is_non_negative() {
            return Err(ValidateError::new(
                "task energy must be finite and non-negative",
            ));
        }
        if deadline < start {
            return Err(ValidateError::new(format!(
                "deadline {deadline} precedes start {start}"
            )));
        }
        Ok(Self {
            energy,
            start,
            deadline,
        })
    }

    /// Required total energy `E_m`.
    #[inline]
    pub fn energy(&self) -> Kwh {
        self.energy
    }

    /// Earliest slot the appliance may run in (`α_m`).
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Latest slot the appliance may run in (`β_m`, inclusive).
    #[inline]
    pub fn deadline(&self) -> usize {
        self.deadline
    }

    /// Number of slots in the window.
    #[inline]
    pub fn window_len(&self) -> usize {
        self.deadline - self.start + 1
    }

    /// Returns `true` when `slot` lies inside the window.
    #[inline]
    pub fn allows_slot(&self, slot: usize) -> bool {
        slot >= self.start && slot <= self.deadline
    }

    /// Slack of the window: slots in the window beyond the minimum needed to
    /// run the task at power `max_level` (how much freedom the scheduler has
    /// to shift load).
    pub fn slack_slots(&self, max_level: Kw, slot_hours: f64) -> f64 {
        let min_slots = if max_level.value() > 0.0 {
            self.energy.value() / (max_level.value() * slot_hours)
        } else {
            f64::INFINITY
        };
        self.window_len() as f64 - min_slots
    }
}

/// A broad class of residential appliance, used for presets and reporting.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ApplianceKind {
    /// Clothes washing machine.
    WashingMachine,
    /// Clothes dryer.
    Dryer,
    /// Dishwasher.
    Dishwasher,
    /// Plug-in electric vehicle charger.
    ElectricVehicle,
    /// Electric water heater tank.
    WaterHeater,
    /// Air conditioner / heat pump.
    AirConditioner,
    /// Refrigerator (must-run base load).
    Refrigerator,
    /// Lighting circuits.
    Lighting,
    /// Electric oven / range.
    Oven,
    /// Pool or well pump.
    PoolPump,
    /// Anything else, with a user-supplied label.
    Custom(String),
}

impl ApplianceKind {
    /// Human-readable name.
    pub fn name(&self) -> &str {
        match self {
            Self::WashingMachine => "washing machine",
            Self::Dryer => "dryer",
            Self::Dishwasher => "dishwasher",
            Self::ElectricVehicle => "electric vehicle",
            Self::WaterHeater => "water heater",
            Self::AirConditioner => "air conditioner",
            Self::Refrigerator => "refrigerator",
            Self::Lighting => "lighting",
            Self::Oven => "oven",
            Self::PoolPump => "pool pump",
            Self::Custom(label) => label,
        }
    }
}

impl fmt::Display for ApplianceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A schedulable appliance: identity, power levels, and task constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Appliance {
    id: ApplianceId,
    kind: ApplianceKind,
    levels: PowerLevels,
    task: TaskSpec,
}

impl Appliance {
    /// Bundles an appliance from its parts. Use [`Appliance::validate`] to
    /// check the parts against a concrete horizon.
    pub fn new(id: ApplianceId, kind: ApplianceKind, levels: PowerLevels, task: TaskSpec) -> Self {
        Self {
            id,
            kind,
            levels,
            task,
        }
    }

    /// The appliance's identifier within its owning customer.
    #[inline]
    pub fn id(&self) -> ApplianceId {
        self.id
    }

    /// The appliance's class.
    #[inline]
    pub fn kind(&self) -> &ApplianceKind {
        &self.kind
    }

    /// The available power levels `X_m`.
    #[inline]
    pub fn levels(&self) -> &PowerLevels {
        &self.levels
    }

    /// The task constraint (`E_m`, `α_m`, `β_m`).
    #[inline]
    pub fn task(&self) -> &TaskSpec {
        &self.task
    }

    /// Maximum energy this appliance can consume in one slot of `horizon`.
    #[inline]
    pub fn max_slot_energy(&self, horizon: Horizon) -> Kwh {
        self.levels.max().for_hours(horizon.slot_hours())
    }

    /// Checks the appliance against a concrete horizon.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the window exceeds the horizon or the
    /// task energy cannot fit in the window even at full power.
    pub fn validate(&self, horizon: Horizon) -> Result<(), ValidateError> {
        if self.task.deadline() >= horizon.slots() {
            return Err(ValidateError::new(format!(
                "{} deadline {} outside horizon of {} slots",
                self.kind,
                self.task.deadline(),
                horizon.slots()
            )));
        }
        if !self.is_schedulable(horizon) {
            return Err(ValidateError::new(format!(
                "{} cannot consume {:.3} within its {}-slot window at max {:.3}",
                self.kind,
                self.task.energy(),
                self.task.window_len(),
                self.levels.max()
            )));
        }
        Ok(())
    }

    /// Returns `true` when running at maximum power in every window slot
    /// would deliver at least the task energy.
    pub fn is_schedulable(&self, horizon: Horizon) -> bool {
        let window_capacity = self.max_slot_energy(horizon) * self.task.window_len() as f64;
        self.task.energy().value() <= window_capacity.value() + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    fn washer() -> Appliance {
        Appliance::new(
            ApplianceId::new(0),
            ApplianceKind::WashingMachine,
            PowerLevels::new(vec![Kw::new(0.5), Kw::new(1.0)]).unwrap(),
            TaskSpec::new(Kwh::new(2.0), 8, 20).unwrap(),
        )
    }

    #[test]
    fn levels_sorted_deduped_with_off() {
        let levels = PowerLevels::new(vec![Kw::new(1.0), Kw::new(0.5), Kw::new(1.0)]).unwrap();
        let values: Vec<f64> = levels.iter().map(|l| l.value()).collect();
        assert_eq!(values, vec![0.0, 0.5, 1.0]);
        assert!(levels.contains(Kw::ZERO));
        assert_eq!(levels.min_positive(), Kw::new(0.5));
    }

    #[test]
    fn levels_reject_negative_and_empty() {
        assert!(PowerLevels::new(vec![Kw::new(-1.0)]).is_err());
        assert!(PowerLevels::new(vec![]).is_err());
        assert!(PowerLevels::new(vec![Kw::ZERO]).is_err());
        assert!(PowerLevels::new(vec![Kw::new(f64::NAN)]).is_err());
    }

    #[test]
    fn stepped_levels() {
        let levels = PowerLevels::stepped(Kw::new(2.0), 4).unwrap();
        let values: Vec<f64> = levels.iter().map(|l| l.value()).collect();
        assert_eq!(values, vec![0.0, 0.5, 1.0, 1.5, 2.0]);
        assert!(PowerLevels::stepped(Kw::new(2.0), 0).is_err());
    }

    #[test]
    fn on_off_levels() {
        let levels = PowerLevels::on_off(Kw::new(1.2)).unwrap();
        assert_eq!(levels.len(), 2);
        assert!(PowerLevels::on_off(Kw::ZERO).is_err());
    }

    #[test]
    fn task_window_and_slack() {
        let task = TaskSpec::new(Kwh::new(3.0), 10, 15).unwrap();
        assert_eq!(task.window_len(), 6);
        assert!(task.allows_slot(10));
        assert!(task.allows_slot(15));
        assert!(!task.allows_slot(9));
        assert!(!task.allows_slot(16));
        // 3 kWh at 1 kW hourly needs 3 slots: slack = 6 - 3.
        assert!((task.slack_slots(Kw::new(1.0), 1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn task_rejects_inverted_window_and_bad_energy() {
        assert!(TaskSpec::new(Kwh::new(1.0), 5, 4).is_err());
        assert!(TaskSpec::new(Kwh::new(-1.0), 0, 5).is_err());
        assert!(TaskSpec::new(Kwh::new(f64::INFINITY), 0, 5).is_err());
    }

    #[test]
    fn appliance_validates_against_horizon() {
        let appliance = washer();
        assert!(appliance.validate(day()).is_ok());
        // Deadline outside a short horizon.
        assert!(appliance.validate(Horizon::hourly(12)).is_err());
    }

    #[test]
    fn infeasible_energy_detected() {
        let appliance = Appliance::new(
            ApplianceId::new(1),
            ApplianceKind::Dryer,
            PowerLevels::on_off(Kw::new(1.0)).unwrap(),
            // 10 kWh in a 3-slot window at 1 kW max: impossible.
            TaskSpec::new(Kwh::new(10.0), 0, 2).unwrap(),
        );
        assert!(!appliance.is_schedulable(day()));
        let err = appliance.validate(day()).unwrap_err();
        assert!(err.to_string().contains("cannot consume"));
    }

    #[test]
    fn max_slot_energy_scales_with_slot_duration() {
        let appliance = washer();
        assert_eq!(appliance.max_slot_energy(day()), Kwh::new(1.0));
        let quarter = Horizon::new(96, 0.25);
        assert_eq!(appliance.max_slot_energy(quarter), Kwh::new(0.25));
    }

    #[test]
    fn kind_display() {
        assert_eq!(
            ApplianceKind::ElectricVehicle.to_string(),
            "electric vehicle"
        );
        assert_eq!(ApplianceKind::Custom("sauna".into()).to_string(), "sauna");
    }
}
