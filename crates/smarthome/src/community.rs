//! The community of `N` customers served by one utility feeder.

use serde::{Deserialize, Serialize};

use nms_types::{CustomerId, Horizon, Kwh, TimeSeries, ValidateError};

use crate::Customer;

/// A community of `N` customers (the paper evaluates `N = 500`) sharing one
/// guideline-price signal and one distribution feeder.
///
/// Customers are stored densely: `community.customer(CustomerId::new(i))`
/// is the `i`-th member.
///
/// # Examples
///
/// ```
/// use nms_smarthome::{Community, Customer};
/// use nms_types::{CustomerId, Horizon};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let horizon = Horizon::hourly_day();
/// let customers = (0..4)
///     .map(|i| Customer::builder(CustomerId::new(i), horizon).build())
///     .collect::<Result<Vec<_>, _>>()?;
/// let community = Community::new(horizon, customers)?;
/// assert_eq!(community.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Community {
    horizon: Horizon,
    customers: Vec<Customer>,
}

impl Community {
    /// Builds a community; `customers[i]` must carry `CustomerId::new(i)`
    /// and plan over the same horizon.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the community is empty, ids are not
    /// dense-and-ordered, or horizons disagree.
    pub fn new(horizon: Horizon, customers: Vec<Customer>) -> Result<Self, ValidateError> {
        if customers.is_empty() {
            return Err(ValidateError::new(
                "community must have at least one customer",
            ));
        }
        for (index, customer) in customers.iter().enumerate() {
            if customer.id().index() != index {
                return Err(ValidateError::new(format!(
                    "customer at position {index} carries id {}",
                    customer.id()
                )));
            }
            if customer.horizon().slots() != horizon.slots() {
                return Err(ValidateError::new(format!(
                    "{} plans over {} slots, community over {}",
                    customer.id(),
                    customer.horizon().slots(),
                    horizon.slots()
                )));
            }
        }
        Ok(Self { horizon, customers })
    }

    /// The shared scheduling horizon.
    #[inline]
    pub fn horizon(&self) -> Horizon {
        self.horizon
    }

    /// Number of customers `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.customers.len()
    }

    /// Always `false`: construction rejects empty communities.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The customers in id order.
    #[inline]
    pub fn customers(&self) -> &[Customer] {
        &self.customers
    }

    /// Looks up a customer by id.
    pub fn customer(&self, id: CustomerId) -> Option<&Customer> {
        self.customers.get(id.index())
    }

    /// Iterator over the customers in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, Customer> {
        self.customers.iter()
    }

    /// Community-wide renewable generation `Θ_h = Σ_n θ_n^h` (kWh per slot).
    pub fn total_generation(&self) -> TimeSeries<f64> {
        TimeSeries::from_fn(self.horizon, |slot| {
            self.customers
                .iter()
                .map(|c| c.generation(slot).value())
                .sum()
        })
    }

    /// Total schedulable task energy across all homes (`Σ_n Σ_m E_m`).
    pub fn total_task_energy(&self) -> Kwh {
        self.customers.iter().map(|c| c.total_task_energy()).sum()
    }

    /// Number of customers that can trade energy back (PV or battery).
    pub fn trading_customers(&self) -> usize {
        self.customers.iter().filter(|c| c.can_trade()).count()
    }
}

impl<'a> IntoIterator for &'a Community {
    type Item = &'a Customer;
    type IntoIter = std::slice::Iter<'a, Customer>;
    fn into_iter(self) -> Self::IntoIter {
        self.customers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{clear_sky_profile, PvPanel};
    use nms_types::Kw;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    fn plain_customer(i: usize) -> Customer {
        Customer::builder(CustomerId::new(i), day())
            .build()
            .unwrap()
    }

    #[test]
    fn dense_ids_required() {
        let err = Community::new(day(), vec![plain_customer(1)]).unwrap_err();
        assert!(err.to_string().contains("position 0"));
        assert!(Community::new(day(), vec![]).is_err());
    }

    #[test]
    fn horizon_agreement_required() {
        let other = Customer::builder(CustomerId::new(0), Horizon::hourly(48))
            .build()
            .unwrap();
        assert!(Community::new(day(), vec![other]).is_err());
    }

    #[test]
    fn total_generation_sums_panels() {
        let mut customers = Vec::new();
        for i in 0..3 {
            customers.push(
                Customer::builder(CustomerId::new(i), day())
                    .pv(PvPanel::new(Kw::new(2.0), clear_sky_profile(day(), Kw::new(2.0))).unwrap())
                    .build()
                    .unwrap(),
            );
        }
        let community = Community::new(day(), customers).unwrap();
        let theta = community.total_generation();
        let single = clear_sky_profile(day(), Kw::new(2.0));
        assert!((theta[12] - 3.0 * single[12]).abs() < 1e-9);
        assert_eq!(community.trading_customers(), 3);
    }

    #[test]
    fn lookup_and_iteration() {
        let community = Community::new(day(), (0..5).map(plain_customer).collect()).unwrap();
        assert_eq!(community.len(), 5);
        assert!(community.customer(CustomerId::new(4)).is_some());
        assert!(community.customer(CustomerId::new(5)).is_none());
        assert_eq!(community.iter().count(), 5);
        assert_eq!((&community).into_iter().count(), 5);
        assert_eq!(community.total_task_energy(), Kwh::ZERO);
        assert_eq!(community.trading_customers(), 0);
    }
}
