//! The rechargeable home battery (paper §2.2).
//!
//! The paper constrains only the state of charge, `0 ≤ b_n^h ≤ B_n`
//! (Eqn 1 drives the dynamics). We additionally support an optional
//! per-slot charge/discharge rate limit — set it to `None` for the paper's
//! ideal battery — because rate limits are what make the cross-entropy
//! battery optimizer's feasible set interesting to test against.

use serde::{Deserialize, Serialize};

use nms_types::{Kwh, ValidateError};

/// A home battery with capacity `B_n`, an initial state of charge, and an
/// optional symmetric per-slot throughput limit.
///
/// # Examples
///
/// ```
/// use nms_smarthome::Battery;
/// use nms_types::Kwh;
///
/// let battery = Battery::new(Kwh::new(10.0), Kwh::new(5.0))?;
/// assert!(battery.is_valid_charge(Kwh::new(7.5)));
/// assert!(!battery.is_valid_charge(Kwh::new(11.0)));
/// # Ok::<(), nms_types::ValidateError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity: Kwh,
    initial_charge: Kwh,
    slot_throughput_limit: Option<Kwh>,
}

impl Battery {
    /// Creates a battery with `capacity` = `B_n` and the given initial state
    /// of charge, with no throughput limit (the paper's model).
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the capacity is negative/non-finite or
    /// the initial charge falls outside `[0, capacity]`.
    pub fn new(capacity: Kwh, initial_charge: Kwh) -> Result<Self, ValidateError> {
        if !capacity.is_finite() || !capacity.is_non_negative() {
            return Err(ValidateError::new(
                "battery capacity must be finite and non-negative",
            ));
        }
        if !initial_charge.is_finite()
            || !initial_charge.is_non_negative()
            || initial_charge.value() > capacity.value() + 1e-9
        {
            return Err(ValidateError::new(format!(
                "initial charge {initial_charge} outside [0, {capacity}]"
            )));
        }
        Ok(Self {
            capacity,
            initial_charge,
            slot_throughput_limit: None,
        })
    }

    /// A zero-capacity battery: the customer effectively has none.
    pub fn none() -> Self {
        Self {
            capacity: Kwh::ZERO,
            initial_charge: Kwh::ZERO,
            slot_throughput_limit: None,
        }
    }

    /// Returns a copy with a symmetric per-slot charge/discharge limit.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] if the limit is negative or non-finite.
    pub fn with_throughput_limit(mut self, limit: Kwh) -> Result<Self, ValidateError> {
        if !limit.is_finite() || !limit.is_non_negative() {
            return Err(ValidateError::new(
                "throughput limit must be finite and non-negative",
            ));
        }
        self.slot_throughput_limit = Some(limit);
        Ok(self)
    }

    /// Usable capacity `B_n`.
    #[inline]
    pub fn capacity(&self) -> Kwh {
        self.capacity
    }

    /// State of charge at the start of the horizon (`b_n^0`).
    #[inline]
    pub fn initial_charge(&self) -> Kwh {
        self.initial_charge
    }

    /// The per-slot throughput limit, if any.
    #[inline]
    pub fn slot_throughput_limit(&self) -> Option<Kwh> {
        self.slot_throughput_limit
    }

    /// Returns `true` for a battery the scheduler can actually use.
    #[inline]
    pub fn is_usable(&self) -> bool {
        self.capacity.value() > 0.0
    }

    /// Returns `true` when `charge` is an admissible state of charge.
    pub fn is_valid_charge(&self, charge: Kwh) -> bool {
        charge.is_finite()
            && charge.value() >= -1e-9
            && charge.value() <= self.capacity.value() + 1e-9
    }

    /// Returns `true` when the transition `from → to` over one slot respects
    /// both the state bounds and the throughput limit.
    pub fn is_valid_transition(&self, from: Kwh, to: Kwh) -> bool {
        if !self.is_valid_charge(from) || !self.is_valid_charge(to) {
            return false;
        }
        match self.slot_throughput_limit {
            Some(limit) => (to - from).abs().value() <= limit.value() + 1e-9,
            None => true,
        }
    }

    /// Clamps a proposed state of charge into the battery's feasible range
    /// (used by stochastic optimizers that sample unconstrained values).
    pub fn clamp_charge(&self, charge: Kwh) -> Kwh {
        charge.clamp(Kwh::ZERO, self.capacity)
    }

    /// Validates an entire state-of-charge trajectory `b^0..b^H`.
    ///
    /// The trajectory must start at the configured initial charge and every
    /// step must be a valid transition.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] describing the first violated constraint.
    pub fn validate_trajectory(&self, trajectory: &[Kwh]) -> Result<(), ValidateError> {
        let first = trajectory
            .first()
            .ok_or_else(|| ValidateError::new("empty battery trajectory"))?;
        if (*first - self.initial_charge).abs().value() > 1e-6 {
            return Err(ValidateError::new(format!(
                "trajectory starts at {first} but battery starts at {}",
                self.initial_charge
            )));
        }
        for (h, pair) in trajectory.windows(2).enumerate() {
            if !self.is_valid_transition(pair[0], pair[1]) {
                return Err(ValidateError::new(format!(
                    "invalid battery transition {} -> {} at slot {h}",
                    pair[0], pair[1]
                )));
            }
        }
        Ok(())
    }
}

impl Default for Battery {
    /// The no-battery default, so `Customer` builders can omit storage.
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_bounds() {
        assert!(Battery::new(Kwh::new(10.0), Kwh::new(5.0)).is_ok());
        assert!(Battery::new(Kwh::new(-1.0), Kwh::ZERO).is_err());
        assert!(Battery::new(Kwh::new(5.0), Kwh::new(6.0)).is_err());
        assert!(Battery::new(Kwh::new(f64::NAN), Kwh::ZERO).is_err());
    }

    #[test]
    fn none_battery_is_unusable() {
        let battery = Battery::none();
        assert!(!battery.is_usable());
        assert!(battery.is_valid_charge(Kwh::ZERO));
        assert!(!battery.is_valid_charge(Kwh::new(0.1)));
        assert_eq!(Battery::default(), battery);
    }

    #[test]
    fn charge_bounds() {
        let battery = Battery::new(Kwh::new(10.0), Kwh::ZERO).unwrap();
        assert!(battery.is_valid_charge(Kwh::ZERO));
        assert!(battery.is_valid_charge(Kwh::new(10.0)));
        assert!(!battery.is_valid_charge(Kwh::new(10.1)));
        assert!(!battery.is_valid_charge(Kwh::new(-0.1)));
        assert!(!battery.is_valid_charge(Kwh::new(f64::NAN)));
    }

    #[test]
    fn throughput_limit_constrains_transitions() {
        let battery = Battery::new(Kwh::new(10.0), Kwh::ZERO)
            .unwrap()
            .with_throughput_limit(Kwh::new(2.0))
            .unwrap();
        assert!(battery.is_valid_transition(Kwh::new(1.0), Kwh::new(3.0)));
        assert!(battery.is_valid_transition(Kwh::new(3.0), Kwh::new(1.0)));
        assert!(!battery.is_valid_transition(Kwh::new(1.0), Kwh::new(3.5)));
        assert!(Battery::new(Kwh::new(1.0), Kwh::ZERO)
            .unwrap()
            .with_throughput_limit(Kwh::new(-1.0))
            .is_err());
    }

    #[test]
    fn unlimited_battery_allows_any_in_range_swing() {
        let battery = Battery::new(Kwh::new(10.0), Kwh::ZERO).unwrap();
        assert!(battery.is_valid_transition(Kwh::ZERO, Kwh::new(10.0)));
        assert!(!battery.is_valid_transition(Kwh::ZERO, Kwh::new(10.5)));
    }

    #[test]
    fn clamp_charge() {
        let battery = Battery::new(Kwh::new(4.0), Kwh::ZERO).unwrap();
        assert_eq!(battery.clamp_charge(Kwh::new(-2.0)), Kwh::ZERO);
        assert_eq!(battery.clamp_charge(Kwh::new(9.0)), Kwh::new(4.0));
        assert_eq!(battery.clamp_charge(Kwh::new(2.5)), Kwh::new(2.5));
    }

    #[test]
    fn trajectory_validation() {
        let battery = Battery::new(Kwh::new(10.0), Kwh::new(2.0)).unwrap();
        let good = vec![Kwh::new(2.0), Kwh::new(5.0), Kwh::new(0.0)];
        assert!(battery.validate_trajectory(&good).is_ok());

        let wrong_start = vec![Kwh::new(0.0), Kwh::new(5.0)];
        assert!(battery.validate_trajectory(&wrong_start).is_err());

        let out_of_range = vec![Kwh::new(2.0), Kwh::new(11.0)];
        assert!(battery.validate_trajectory(&out_of_range).is_err());

        assert!(battery.validate_trajectory(&[]).is_err());
    }

    #[test]
    fn trajectory_respects_throughput() {
        let battery = Battery::new(Kwh::new(10.0), Kwh::ZERO)
            .unwrap()
            .with_throughput_limit(Kwh::new(1.0))
            .unwrap();
        let too_fast = vec![Kwh::ZERO, Kwh::new(2.0)];
        let err = battery.validate_trajectory(&too_fast).unwrap_err();
        assert!(err.to_string().contains("invalid battery transition"));
    }
}
