//! A catalog of typical residential appliances.
//!
//! The paper sets up customer energy consumption "similar to the previous
//! works [8, 7]", whose exact tables are not public. This catalog encodes
//! the standard residential mix those works draw on; `nms-sim` samples from
//! it to synthesize communities (see DESIGN.md, substitution table).

use rand::Rng;

use nms_types::{ApplianceId, Horizon, Kw, Kwh};

use crate::{Appliance, ApplianceKind, PowerLevels, TaskSpec};

/// How an appliance's scheduling window relates to the day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowStyle {
    /// May run any time of day.
    Anytime,
    /// Daytime chores (roughly 08:00–20:00).
    Daytime,
    /// Evening tasks (17:00–23:00).
    Evening,
    /// Overnight tasks such as EV charging (20:00–07:00 → clipped to the
    /// horizon as late-evening slots plus early-morning slots of the next
    /// day when the horizon allows).
    Overnight,
}

/// A parameterized appliance template.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppliancePreset {
    /// Which appliance class this template instantiates.
    pub kind_tag: PresetKind,
    /// Inclusive range of plausible task energies (kWh per day).
    pub energy_range: (f64, f64),
    /// Maximum power draw (kW).
    pub max_kw: f64,
    /// Number of discrete power steps between 0 and `max_kw`.
    pub steps: usize,
    /// Scheduling-window style.
    pub window: WindowStyle,
    /// Probability that a given household owns this appliance.
    pub ownership: f64,
}

/// Copyable tag for [`ApplianceKind`] (the enum itself holds a `String` in
/// its `Custom` variant, so presets store this tag instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum PresetKind {
    WashingMachine,
    Dryer,
    Dishwasher,
    ElectricVehicle,
    WaterHeater,
    AirConditioner,
    Refrigerator,
    Lighting,
    Oven,
    PoolPump,
}

impl PresetKind {
    /// Converts the tag into the full [`ApplianceKind`].
    pub fn kind(self) -> ApplianceKind {
        match self {
            Self::WashingMachine => ApplianceKind::WashingMachine,
            Self::Dryer => ApplianceKind::Dryer,
            Self::Dishwasher => ApplianceKind::Dishwasher,
            Self::ElectricVehicle => ApplianceKind::ElectricVehicle,
            Self::WaterHeater => ApplianceKind::WaterHeater,
            Self::AirConditioner => ApplianceKind::AirConditioner,
            Self::Refrigerator => ApplianceKind::Refrigerator,
            Self::Lighting => ApplianceKind::Lighting,
            Self::Oven => ApplianceKind::Oven,
            Self::PoolPump => ApplianceKind::PoolPump,
        }
    }
}

/// The standard residential appliance mix used by the synthetic community
/// generator. Energies and powers follow the ranges common in the
/// demand-response literature (cf. \[9\] and the setups of [8, 7]).
pub const APPLIANCE_PRESETS: &[AppliancePreset] = &[
    AppliancePreset {
        kind_tag: PresetKind::WashingMachine,
        energy_range: (1.0, 2.0),
        max_kw: 1.0,
        steps: 2,
        window: WindowStyle::Daytime,
        ownership: 0.9,
    },
    AppliancePreset {
        kind_tag: PresetKind::Dryer,
        energy_range: (1.8, 3.0),
        max_kw: 3.0,
        steps: 2,
        window: WindowStyle::Daytime,
        ownership: 0.8,
    },
    AppliancePreset {
        kind_tag: PresetKind::Dishwasher,
        energy_range: (1.0, 1.8),
        max_kw: 1.0,
        steps: 2,
        window: WindowStyle::Evening,
        ownership: 0.85,
    },
    AppliancePreset {
        kind_tag: PresetKind::ElectricVehicle,
        energy_range: (5.0, 9.0),
        max_kw: 3.3,
        steps: 3,
        window: WindowStyle::Overnight,
        ownership: 0.4,
    },
    AppliancePreset {
        kind_tag: PresetKind::WaterHeater,
        energy_range: (2.5, 4.0),
        max_kw: 1.5,
        steps: 2,
        window: WindowStyle::Anytime,
        ownership: 0.7,
    },
    AppliancePreset {
        kind_tag: PresetKind::AirConditioner,
        energy_range: (3.0, 5.0),
        max_kw: 1.2,
        steps: 3,
        window: WindowStyle::Anytime,
        ownership: 0.75,
    },
    AppliancePreset {
        kind_tag: PresetKind::Refrigerator,
        energy_range: (1.5, 2.5),
        max_kw: 0.25,
        steps: 1,
        window: WindowStyle::Anytime,
        ownership: 1.0,
    },
    AppliancePreset {
        kind_tag: PresetKind::Lighting,
        energy_range: (1.0, 2.0),
        max_kw: 0.4,
        steps: 2,
        window: WindowStyle::Evening,
        ownership: 1.0,
    },
    AppliancePreset {
        kind_tag: PresetKind::Oven,
        energy_range: (1.0, 2.0),
        max_kw: 1.2,
        steps: 2,
        window: WindowStyle::Evening,
        ownership: 0.9,
    },
    AppliancePreset {
        kind_tag: PresetKind::PoolPump,
        energy_range: (2.0, 4.0),
        max_kw: 1.1,
        steps: 1,
        window: WindowStyle::Daytime,
        ownership: 0.15,
    },
];

/// Samples a daily window of exactly `length` slots whose anchor matches
/// the style, returning inclusive `(start, deadline)` hour-of-day indices
/// on a 24-slot day.
fn window_hours(style: WindowStyle, length: usize, rng: &mut impl Rng) -> (usize, usize) {
    let length = length.clamp(1, 24);
    let start_range = match style {
        // Anywhere in the day.
        WindowStyle::Anytime => 0..=(24 - length),
        // Morning/afternoon chores.
        WindowStyle::Daytime => 7..=13usize.min(24 - length),
        // After-work tasks.
        WindowStyle::Evening => 15..=18usize.min(24 - length),
        // Late-evening or pre-dawn (clipped to one day).
        WindowStyle::Overnight => {
            if rng.gen_bool(0.5) {
                0..=2usize.min(24 - length)
            } else {
                17..=19usize.min(24 - length)
            }
        }
    };
    let (lo, hi) = start_range.into_inner();
    let start = if lo >= hi {
        lo.min(hi)
    } else {
        rng.gen_range(lo..=hi)
    };
    (start, (start + length - 1).min(23))
}

/// Instantiates a concrete [`Appliance`] from a preset, drawing its energy
/// and window from `rng`. Deterministic given a seeded RNG.
///
/// Windows are *tight*: the minimum number of full-power slots the task
/// needs plus 1–4 slots of slack. Wide windows would let the entire
/// community pile every task into a single cheap hour, which neither real
/// households nor the paper's PAR figures (1.4–1.9) exhibit.
///
/// # Panics
///
/// Panics if `horizon` has fewer than 24 slots of one hour each worth of
/// span (the presets are calibrated for hourly days).
pub fn catalog_appliance(
    preset: &AppliancePreset,
    id: ApplianceId,
    horizon: Horizon,
    rng: &mut impl Rng,
) -> Appliance {
    assert!(
        horizon.slots() >= 24,
        "appliance presets target horizons of at least one hourly day"
    );
    let energy = rng.gen_range(preset.energy_range.0..=preset.energy_range.1);
    let slot_cap = preset.max_kw * horizon.slot_hours();
    let min_slots = (energy / slot_cap).ceil().max(1.0) as usize;
    let slack = rng.gen_range(1..=3usize);
    let (start, deadline) = window_hours(preset.window, min_slots + slack, rng);
    let window_slots = (deadline - start + 1) as f64;
    let energy = energy.min(slot_cap * window_slots * 0.95);
    let levels =
        PowerLevels::stepped(Kw::new(preset.max_kw), preset.steps).expect("preset levels valid");
    let task = TaskSpec::new(Kwh::new(energy), start, deadline).expect("preset window valid");
    Appliance::new(id, preset.kind_tag.kind(), levels, task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_types::Horizon;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn every_preset_yields_schedulable_appliances() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let horizon = Horizon::hourly_day();
        for preset in APPLIANCE_PRESETS {
            for trial in 0..50 {
                let appliance =
                    catalog_appliance(preset, ApplianceId::new(trial), horizon, &mut rng);
                assert!(
                    appliance.validate(horizon).is_ok(),
                    "{:?} trial {trial} produced invalid appliance",
                    preset.kind_tag
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let horizon = Horizon::hourly_day();
        let a = catalog_appliance(
            &APPLIANCE_PRESETS[0],
            ApplianceId::new(0),
            horizon,
            &mut ChaCha8Rng::seed_from_u64(42),
        );
        let b = catalog_appliance(
            &APPLIANCE_PRESETS[0],
            ApplianceId::new(0),
            horizon,
            &mut ChaCha8Rng::seed_from_u64(42),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn ownership_probabilities_are_probabilities() {
        for preset in APPLIANCE_PRESETS {
            assert!(
                (0.0..=1.0).contains(&preset.ownership),
                "{:?}",
                preset.kind_tag
            );
            assert!(preset.energy_range.0 <= preset.energy_range.1);
            assert!(preset.max_kw > 0.0);
            assert!(preset.steps > 0);
        }
    }

    #[test]
    fn presets_cover_the_standard_mix() {
        assert!(APPLIANCE_PRESETS.len() >= 8);
        assert!(APPLIANCE_PRESETS
            .iter()
            .any(|p| p.kind_tag == PresetKind::ElectricVehicle));
        // Refrigerators are universal.
        let fridge = APPLIANCE_PRESETS
            .iter()
            .find(|p| p.kind_tag == PresetKind::Refrigerator)
            .unwrap();
        assert_eq!(fridge.ownership, 1.0);
    }

    #[test]
    fn kind_tags_round_trip() {
        assert_eq!(
            PresetKind::WashingMachine.kind(),
            ApplianceKind::WashingMachine
        );
        assert_eq!(PresetKind::PoolPump.kind(), ApplianceKind::PoolPump);
    }
}
