//! Billing: evaluating the cost equations over a complete community
//! schedule.

use serde::{Deserialize, Serialize};

use nms_smarthome::CommunitySchedule;
use nms_types::{CustomerId, Dollars, HorizonMismatchError, TimeSeries};

use crate::{CostModel, NetMeteringTariff, PriceSignal};

/// One customer's bill decomposed into purchases and net-metering credits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BillBreakdown {
    /// Who the bill belongs to.
    pub customer: CustomerId,
    /// Dollars paid for purchased energy.
    pub purchases: Dollars,
    /// Dollars credited for energy sold back (non-negative).
    pub credits: Dollars,
}

impl BillBreakdown {
    /// Net amount due: purchases minus credits.
    pub fn net(&self) -> Dollars {
        self.purchases - self.credits
    }
}

/// Bills a [`CommunitySchedule`] under a price signal and tariff.
///
/// # Examples
///
/// See the `billing_sums_to_community_cost` test: for an all-buying
/// community the per-customer bills sum to the utility's quadratic
/// procurement cost.
#[derive(Debug, Clone)]
pub struct BillingEngine {
    prices: PriceSignal,
    tariff: NetMeteringTariff,
}

impl BillingEngine {
    /// Creates a billing engine for the given price signal and tariff.
    pub fn new(prices: PriceSignal, tariff: NetMeteringTariff) -> Self {
        Self { prices, tariff }
    }

    /// The bound price signal.
    #[inline]
    pub fn prices(&self) -> &PriceSignal {
        &self.prices
    }

    /// The bound tariff.
    #[inline]
    pub fn tariff(&self) -> NetMeteringTariff {
        self.tariff
    }

    /// Computes each customer's bill under Eqn (2)'s per-slot costs.
    ///
    /// # Errors
    ///
    /// Returns [`HorizonMismatchError`] if the schedule's horizon disagrees
    /// with the price signal's.
    pub fn bill(
        &self,
        schedule: &CommunitySchedule,
    ) -> Result<Vec<BillBreakdown>, HorizonMismatchError> {
        if schedule.horizon().slots() != self.prices.len() {
            return Err(HorizonMismatchError {
                expected: self.prices.len(),
                actual: schedule.horizon().slots(),
            });
        }
        let model = CostModel::new(&self.prices, self.tariff);
        let total: &TimeSeries<f64> = schedule.grid_demand();
        let mut bills = Vec::with_capacity(schedule.customer_schedules().len());
        for plan in schedule.customer_schedules() {
            let mut purchases = Dollars::ZERO;
            let mut credits = Dollars::ZERO;
            for slot in 0..self.prices.len() {
                let own = plan.trading()[slot];
                let others = total[slot] - own;
                let cost = model.slot_cost(slot, others, own);
                if cost.value() >= 0.0 {
                    purchases += cost;
                } else {
                    credits += -cost;
                }
            }
            bills.push(BillBreakdown {
                customer: plan.customer(),
                purchases,
                credits,
            });
        }
        Ok(bills)
    }

    /// Total of all net bills.
    ///
    /// # Errors
    ///
    /// Same as [`BillingEngine::bill`].
    pub fn total_revenue(
        &self,
        schedule: &CommunitySchedule,
    ) -> Result<Dollars, HorizonMismatchError> {
        Ok(self.bill(schedule)?.iter().map(BillBreakdown::net).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_smarthome::{
        Appliance, ApplianceKind, ApplianceSchedule, Community, Customer, CustomerSchedule,
        PowerLevels, PvPanel, TaskSpec,
    };
    use nms_types::{ApplianceId, Horizon, Kw, Kwh, TimeSeries};

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    fn buying_community(n: usize) -> CommunitySchedule {
        let appliance = Appliance::new(
            ApplianceId::new(0),
            ApplianceKind::WaterHeater,
            PowerLevels::on_off(Kw::new(2.0)).unwrap(),
            TaskSpec::new(Kwh::new(4.0), 0, 23).unwrap(),
        );
        let customers: Vec<Customer> = (0..n)
            .map(|i| {
                Customer::builder(CustomerId::new(i), day())
                    .appliance(appliance.clone())
                    .build()
                    .unwrap()
            })
            .collect();
        let community = Community::new(day(), customers).unwrap();
        let schedules = community
            .iter()
            .map(|c| {
                let mut e = TimeSeries::filled(day(), 0.0);
                e[10] = 2.0;
                e[11] = 2.0;
                let s = ApplianceSchedule::new(&c.appliances()[0], day(), e).unwrap();
                CustomerSchedule::with_idle_battery(c, vec![s]).unwrap()
            })
            .collect();
        CommunitySchedule::new(day(), schedules).unwrap()
    }

    #[test]
    fn billing_sums_to_community_cost() {
        let schedule = buying_community(5);
        let prices = PriceSignal::flat(day(), 0.02).unwrap();
        let engine = BillingEngine::new(prices.clone(), NetMeteringTariff::full_retail());
        let bills = engine.bill(&schedule).unwrap();
        assert_eq!(bills.len(), 5);
        let revenue = engine.total_revenue(&schedule).unwrap();
        let model = CostModel::new(&prices, NetMeteringTariff::full_retail());
        let community_cost = model.community_cost(schedule.grid_demand());
        assert!((revenue.value() - community_cost.value()).abs() < 1e-9);
        for bill in &bills {
            assert_eq!(bill.credits, Dollars::ZERO);
            assert!(bill.net().value() > 0.0);
        }
    }

    #[test]
    fn seller_earns_credit() {
        // One pure PV producer among buyers.
        let pv_profile = TimeSeries::from_fn(day(), |h| if h == 10 { 3.0 } else { 0.0 });
        let producer = Customer::builder(CustomerId::new(0), day())
            .pv(PvPanel::new(Kw::new(3.0), pv_profile).unwrap())
            .build()
            .unwrap();
        let appliance = Appliance::new(
            ApplianceId::new(0),
            ApplianceKind::Oven,
            PowerLevels::on_off(Kw::new(2.0)).unwrap(),
            TaskSpec::new(Kwh::new(2.0), 10, 11).unwrap(),
        );
        let buyer = Customer::builder(CustomerId::new(1), day())
            .appliance(appliance.clone())
            .build()
            .unwrap();
        let producer_plan = CustomerSchedule::with_idle_battery(&producer, vec![]).unwrap();
        let mut e = TimeSeries::filled(day(), 0.0);
        e[10] = 2.0;
        let buyer_plan = CustomerSchedule::with_idle_battery(
            &buyer,
            vec![ApplianceSchedule::new(&appliance, day(), e).unwrap()],
        )
        .unwrap();
        let schedule = CommunitySchedule::new(day(), vec![producer_plan, buyer_plan]).unwrap();

        let prices = PriceSignal::flat(day(), 0.1).unwrap();
        let engine = BillingEngine::new(prices, NetMeteringTariff::new(2.0).unwrap());
        let bills = engine.bill(&schedule).unwrap();
        // Producer sells 3, buyer buys 2; community net is -1 → unit price 0.
        assert_eq!(bills[0].credits, Dollars::ZERO);
        // Net community export floors the unit price at this slot.
        assert_eq!(bills[1].purchases, Dollars::ZERO);
    }

    #[test]
    fn seller_credit_when_community_still_imports() {
        let pv_profile = TimeSeries::from_fn(day(), |h| if h == 10 { 1.0 } else { 0.0 });
        let producer = Customer::builder(CustomerId::new(0), day())
            .pv(PvPanel::new(Kw::new(1.0), pv_profile).unwrap())
            .build()
            .unwrap();
        let appliance = Appliance::new(
            ApplianceId::new(0),
            ApplianceKind::Oven,
            PowerLevels::on_off(Kw::new(2.0)).unwrap(),
            TaskSpec::new(Kwh::new(4.0), 9, 11).unwrap(),
        );
        let buyer = Customer::builder(CustomerId::new(1), day())
            .appliance(appliance.clone())
            .build()
            .unwrap();
        let producer_plan = CustomerSchedule::with_idle_battery(&producer, vec![]).unwrap();
        let mut e = TimeSeries::filled(day(), 0.0);
        e[9] = 2.0;
        e[10] = 2.0;
        let buyer_plan = CustomerSchedule::with_idle_battery(
            &buyer,
            vec![ApplianceSchedule::new(&appliance, day(), e).unwrap()],
        )
        .unwrap();
        let schedule = CommunitySchedule::new(day(), vec![producer_plan, buyer_plan]).unwrap();

        let prices = PriceSignal::flat(day(), 0.1).unwrap();
        let engine = BillingEngine::new(prices, NetMeteringTariff::new(2.0).unwrap());
        let bills = engine.bill(&schedule).unwrap();
        // Slot 10: community net = 1, unit = 0.1; producer sells 1 →
        // credit = 0.1/2 · 1 = 0.05.
        assert!((bills[0].credits.value() - 0.05).abs() < 1e-9);
        assert!((bills[0].net().value() + 0.05).abs() < 1e-9);
        assert!(bills[1].purchases.value() > 0.0);
    }

    #[test]
    fn horizon_mismatch_rejected() {
        let schedule = buying_community(2);
        let prices = PriceSignal::flat(Horizon::hourly(48), 0.1).unwrap();
        let engine = BillingEngine::new(prices, NetMeteringTariff::full_retail());
        assert!(engine.bill(&schedule).is_err());
    }
}
