//! The quadratic cost model with net metering (paper §2.3, Eqns 2–3).

use serde::{Deserialize, Serialize};

use nms_types::{Dollars, TimeSeries, ValidateError};

use crate::PriceSignal;

/// The net-metering tariff parameter `W ≥ 1`: customers selling energy back
/// are paid `p_h / W`, i.e. a fraction `1/W` of the grid unit price.
///
/// `W = 1` is full retail net metering; larger `W` models the "avoided cost"
/// style tariffs some states use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetMeteringTariff {
    w: f64,
}

impl NetMeteringTariff {
    /// Creates a tariff with sell-back divisor `w`.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] unless `w ≥ 1` and finite (the paper
    /// requires `W ≥ 1`: the utility never pays more than retail).
    pub fn new(w: f64) -> Result<Self, ValidateError> {
        if !w.is_finite() || w < 1.0 {
            return Err(ValidateError::new(format!(
                "net metering divisor W must be finite and ≥ 1, got {w}"
            )));
        }
        Ok(Self { w })
    }

    /// Full retail-rate net metering (`W = 1`).
    pub fn full_retail() -> Self {
        Self { w: 1.0 }
    }

    /// The divisor `W`.
    #[inline]
    pub fn w(&self) -> f64 {
        self.w
    }

    /// The fraction of the grid unit price a seller receives (`1/W`).
    #[inline]
    pub fn sell_fraction(&self) -> f64 {
        1.0 / self.w
    }
}

impl Default for NetMeteringTariff {
    /// The paper's typical partial-rate setting, `W = 1.5`.
    fn default() -> Self {
        Self { w: 1.5 }
    }
}

/// Evaluates the paper's cost equations for a given guideline price and
/// tariff.
///
/// With the quadratic model (\[9\]) the *unit* grid price at slot `h` is
/// `p_h · max(Σ_i y_i, 0)`: the more the community draws, the more each
/// marginal kWh costs. A buyer's slot cost is `unit · y_n`; a seller is
/// credited `unit/W · |y_n|` (see the crate docs for the sign convention
/// relative to the paper's Eqn 2).
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    prices: &'a PriceSignal,
    tariff: NetMeteringTariff,
}

impl<'a> CostModel<'a> {
    /// Binds a price signal and a tariff.
    pub fn new(prices: &'a PriceSignal, tariff: NetMeteringTariff) -> Self {
        Self { prices, tariff }
    }

    /// The bound price signal.
    #[inline]
    pub fn prices(&self) -> &PriceSignal {
        self.prices
    }

    /// The bound tariff.
    #[inline]
    pub fn tariff(&self) -> NetMeteringTariff {
        self.tariff
    }

    /// The grid unit price at `slot` when the community's total trading is
    /// `community_trading` kWh: `p_h · max(Σ y, 0)` in $/kWh.
    #[inline]
    pub fn unit_price(&self, slot: usize, community_trading: f64) -> f64 {
        self.prices.at(slot).value() * community_trading.max(0.0)
    }

    /// Cost of customer `n` at `slot` (Eqn 2): `others_trading` is
    /// `Σ_{i≠n} y_i^h` and `own_trading` is `y_n^h` (negative = selling).
    ///
    /// Positive result: the customer pays; negative: the customer is
    /// credited for energy sold.
    pub fn slot_cost(&self, slot: usize, others_trading: f64, own_trading: f64) -> Dollars {
        let unit = self.unit_price(slot, others_trading + own_trading);
        if own_trading >= 0.0 {
            Dollars::new(unit * own_trading)
        } else {
            Dollars::new(unit * self.tariff.sell_fraction() * own_trading)
        }
    }

    /// Total cost of a customer over the horizon, given the aggregate
    /// trading of the *other* customers per slot and the customer's own
    /// trading series (Problem P1's objective `Σ_h C_n^h`).
    ///
    /// # Panics
    ///
    /// Panics if the series have different slot counts than the price
    /// signal.
    pub fn customer_cost(
        &self,
        others_trading: &TimeSeries<f64>,
        own_trading: &TimeSeries<f64>,
    ) -> Dollars {
        assert_eq!(
            others_trading.len(),
            self.prices.len(),
            "others/prices slots"
        );
        assert_eq!(own_trading.len(), self.prices.len(), "own/prices slots");
        (0..self.prices.len())
            .map(|slot| self.slot_cost(slot, others_trading[slot], own_trading[slot]))
            .sum()
    }

    /// Hoists the per-slot billing terms into a dense [`HoistedCostTable`]
    /// so inner-loop solvers can evaluate [`CostModel::slot_cost`] as an
    /// array lookup + multiply instead of a billing-engine call.
    ///
    /// The table is rebuilt in place (no allocation once `table`'s buffers
    /// have reached the horizon length) and is **exact**: for every slot and
    /// every `own_trading`, [`HoistedCostTable::slot_cost`] performs the
    /// same floating-point operations in the same order as
    /// [`CostModel::slot_cost`], so results are bit-identical (see
    /// DESIGN.md §11 for the exactness argument).
    ///
    /// # Panics
    ///
    /// Panics if `others_trading` has a different slot count than the price
    /// signal.
    pub fn hoist_into(&self, others_trading: &TimeSeries<f64>, table: &mut HoistedCostTable) {
        self.hoist_slice_into(others_trading.as_slice(), table);
    }

    /// [`CostModel::hoist_into`] over a raw slice of per-slot others-trading
    /// values — the batch variant used by the structure-of-arrays game
    /// kernels, which keep every customer's series as a contiguous `f64`
    /// lane rather than a `TimeSeries`. Exactness is unchanged: the hoisted
    /// terms are the exact `f64`s the cost model would have read.
    ///
    /// # Panics
    ///
    /// Panics if `others_trading` has a different slot count than the price
    /// signal.
    pub fn hoist_slice_into(&self, others_trading: &[f64], table: &mut HoistedCostTable) {
        assert_eq!(
            others_trading.len(),
            self.prices.len(),
            "others/prices slots"
        );
        table.price.clear();
        table
            .price
            .extend((0..self.prices.len()).map(|slot| self.prices.at(slot).value()));
        table.others.clear();
        table.others.extend_from_slice(others_trading);
        table.sell_fraction = self.tariff.sell_fraction();
    }

    /// Convenience wrapper around [`CostModel::hoist_into`] that allocates a
    /// fresh table.
    pub fn hoist(&self, others_trading: &TimeSeries<f64>) -> HoistedCostTable {
        let mut table = HoistedCostTable::default();
        self.hoist_into(others_trading, &mut table);
        table
    }

    /// The community-level procurement cost `Σ_h p_h (Σ_n y_n^h)²` the
    /// utility faces (paper §2.3), with exports clamped at zero.
    pub fn community_cost(&self, total_trading: &TimeSeries<f64>) -> Dollars {
        assert_eq!(
            total_trading.len(),
            self.prices.len(),
            "trading/prices slots"
        );
        (0..self.prices.len())
            .map(|slot| {
                let y = total_trading[slot].max(0.0);
                Dollars::new(self.prices.at(slot).value() * y * y)
            })
            .sum()
    }
}

/// Dense per-slot billing terms hoisted out of [`CostModel`] (one guideline
/// price, one aggregate-others trading value per slot, plus the tariff's
/// sell fraction), built once per best-response/Jacobi round by
/// [`CostModel::hoist_into`].
///
/// The inner loops of the DP appliance scheduler evaluate
/// [`HoistedCostTable::slot_cost`] `O(H·R·J)` times per schedule; hoisting
/// turns each evaluation into two array reads and a handful of multiplies.
///
/// **Exactness.** `slot_cost(slot, own)` computes
/// `price[slot] * (others[slot] + own).max(0.0)` and then multiplies by
/// `own` (buyer) or `sell_fraction * own` (seller) — operation for
/// operation the body of [`CostModel::slot_cost`]. Because the hoisted
/// terms are the exact `f64`s the cost model would have read, every result
/// is bit-identical to the billing-engine call; no tolerance is involved.
/// Arbitrary cost closures that are not of this billing form cannot be
/// hoisted and keep using the closure path (see `nms-solver`'s
/// `DpScheduler::schedule`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HoistedCostTable {
    price: Vec<f64>,
    others: Vec<f64>,
    sell_fraction: f64,
}

impl HoistedCostTable {
    /// Number of hoisted slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.price.len()
    }

    /// `true` when no slots have been hoisted yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.price.is_empty()
    }

    /// The aggregate trading of the other customers at `slot`, as hoisted.
    #[inline]
    pub fn others(&self, slot: usize) -> f64 {
        self.others[slot]
    }

    /// Bit-identical to
    /// `CostModel::slot_cost(slot, others[slot], own_trading).value()` for
    /// the model and others-series this table was hoisted from.
    #[inline]
    pub fn slot_cost(&self, slot: usize, own_trading: f64) -> f64 {
        let unit = self.price[slot] * (self.others[slot] + own_trading).max(0.0);
        if own_trading >= 0.0 {
            unit * own_trading
        } else {
            unit * self.sell_fraction * own_trading
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_types::Horizon;
    use proptest::prelude::*;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    fn model_fixture(prices: &PriceSignal) -> CostModel<'_> {
        CostModel::new(prices, NetMeteringTariff::new(2.0).unwrap())
    }

    #[test]
    fn tariff_validates_w() {
        assert!(NetMeteringTariff::new(1.0).is_ok());
        assert!(NetMeteringTariff::new(0.9).is_err());
        assert!(NetMeteringTariff::new(f64::NAN).is_err());
        assert_eq!(NetMeteringTariff::full_retail().sell_fraction(), 1.0);
        assert!((NetMeteringTariff::default().w() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn buyer_pays_quadratic_unit_price() {
        let prices = PriceSignal::flat(day(), 0.1).unwrap();
        let model = model_fixture(&prices);
        // Community trades 10 total, customer buys 2 of it:
        // unit = 0.1·10 = 1 $/kWh; cost = 2 $.
        let cost = model.slot_cost(0, 8.0, 2.0);
        assert!((cost.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn seller_credited_at_partial_rate() {
        let prices = PriceSignal::flat(day(), 0.1).unwrap();
        let model = model_fixture(&prices);
        // Community net 10 even after the sale; seller sells 2.
        // unit = 1 $/kWh, credit = 1/W · 1 · 2 = 1 $ (W = 2).
        let cost = model.slot_cost(0, 12.0, -2.0);
        assert!((cost.value() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn community_export_floors_unit_price() {
        let prices = PriceSignal::flat(day(), 0.1).unwrap();
        let model = model_fixture(&prices);
        // Net-exporting community: unit price floors at zero.
        assert_eq!(model.unit_price(0, -5.0), 0.0);
        assert_eq!(model.slot_cost(0, -7.0, 2.0), Dollars::ZERO);
        assert_eq!(model.slot_cost(0, -3.0, -2.0), Dollars::ZERO);
    }

    #[test]
    fn buyers_cover_the_quadratic_community_cost() {
        // When everyone buys, Σ_n C_n = p (Σ y)².
        let prices = PriceSignal::flat(day(), 0.05).unwrap();
        let model = model_fixture(&prices);
        let trades = [3.0, 4.0, 5.0];
        let total: f64 = trades.iter().sum();
        let sum_costs: f64 = trades
            .iter()
            .map(|&y| model.slot_cost(7, total - y, y).value())
            .sum();
        assert!((sum_costs - 0.05 * total * total).abs() < 1e-9);
    }

    #[test]
    fn customer_cost_accumulates_over_horizon() {
        let prices = PriceSignal::flat(day(), 0.1).unwrap();
        let model = model_fixture(&prices);
        let others = TimeSeries::filled(day(), 8.0);
        let own = TimeSeries::filled(day(), 2.0);
        let total = model.customer_cost(&others, &own);
        assert!((total.value() - 24.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn community_cost_clamps_exports() {
        let prices = PriceSignal::flat(day(), 0.1).unwrap();
        let model = model_fixture(&prices);
        let mut trading = TimeSeries::filled(day(), 0.0);
        trading[12] = -10.0; // exporting
        trading[19] = 10.0;
        let cost = model.community_cost(&trading);
        assert!((cost.value() - 0.1 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_price_window_makes_energy_free() {
        // This is exactly what the paper's attack exploits.
        let mut series = TimeSeries::filled(day(), 0.1);
        series[16] = 0.0;
        series[17] = 0.0;
        let prices = PriceSignal::new(series).unwrap();
        let model = model_fixture(&prices);
        assert_eq!(model.slot_cost(16, 100.0, 50.0), Dollars::ZERO);
        assert!(model.slot_cost(15, 100.0, 50.0).value() > 0.0);
    }

    #[test]
    fn hoisted_table_matches_slot_cost_bitwise() {
        let mut series = TimeSeries::filled(day(), 0.07);
        series[16] = 0.0;
        series[3] = 0.41;
        let prices = PriceSignal::new(series).unwrap();
        let model = model_fixture(&prices);
        let others = TimeSeries::from_fn(day(), |h| (h as f64) * 0.7 - 5.0);
        let table = model.hoist(&others);
        assert_eq!(table.len(), 24);
        assert!(!table.is_empty());
        for slot in 0..24 {
            assert_eq!(table.others(slot), others[slot]);
            for own in [-7.5, -0.1, 0.0, 0.3, 4.0, 11.0] {
                let reference = model.slot_cost(slot, others[slot], own).value();
                let hoisted = table.slot_cost(slot, own);
                assert_eq!(
                    reference.to_bits(),
                    hoisted.to_bits(),
                    "slot {slot} own {own}: {reference} vs {hoisted}"
                );
            }
        }
    }

    #[test]
    fn hoist_into_reuses_buffers() {
        let prices = PriceSignal::flat(day(), 0.1).unwrap();
        let model = model_fixture(&prices);
        let others = TimeSeries::filled(day(), 2.0);
        let mut table = model.hoist(&others);
        let others2 = TimeSeries::filled(day(), -3.0);
        model.hoist_into(&others2, &mut table);
        assert_eq!(table.others(0), -3.0);
        assert_eq!(
            table.slot_cost(5, 1.0).to_bits(),
            model.slot_cost(5, -3.0, 1.0).value().to_bits()
        );
    }

    proptest! {
        #[test]
        fn prop_hoisted_table_bit_identical_to_model(
            price in 0.0_f64..1.0,
            w in 1.0_f64..4.0,
            others in -20.0_f64..50.0,
            own in -20.0_f64..20.0,
        ) {
            let prices = PriceSignal::flat(day(), price).unwrap();
            let model = CostModel::new(&prices, NetMeteringTariff::new(w).unwrap());
            let others_series = TimeSeries::filled(day(), others);
            let table = model.hoist(&others_series);
            let reference = model.slot_cost(0, others, own).value();
            let hoisted = table.slot_cost(0, own);
            prop_assert_eq!(reference.to_bits(), hoisted.to_bits());
        }

        #[test]
        fn prop_buying_more_never_cheapens(
            price in 0.01_f64..1.0,
            others in 0.0_f64..50.0,
            y1 in 0.0_f64..20.0,
            extra in 0.0_f64..20.0,
        ) {
            let prices = PriceSignal::flat(day(), price).unwrap();
            let model = model_fixture(&prices);
            let c1 = model.slot_cost(0, others, y1).value();
            let c2 = model.slot_cost(0, others, y1 + extra).value();
            prop_assert!(c2 + 1e-12 >= c1);
        }

        #[test]
        fn prop_selling_is_never_charged(
            price in 0.0_f64..1.0,
            others in -20.0_f64..50.0,
            sold in 0.0_f64..20.0,
        ) {
            let prices = PriceSignal::flat(day(), price).unwrap();
            let model = model_fixture(&prices);
            let cost = model.slot_cost(0, others, -sold).value();
            prop_assert!(cost <= 1e-12);
        }

        #[test]
        fn prop_seller_credit_scales_with_w(
            others in 10.0_f64..50.0,
            sold in 0.1_f64..5.0,
            w in 1.0_f64..4.0,
        ) {
            let prices = PriceSignal::flat(day(), 0.1).unwrap();
            let full = CostModel::new(&prices, NetMeteringTariff::full_retail());
            let partial = CostModel::new(&prices, NetMeteringTariff::new(w).unwrap());
            let credit_full = -full.slot_cost(0, others, -sold).value();
            let credit_partial = -partial.slot_cost(0, others, -sold).value();
            prop_assert!((credit_partial * w - credit_full).abs() < 1e-9);
        }
    }
}
