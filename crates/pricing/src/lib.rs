//! Pricing substrate (paper §2.3): the quadratic cost model, the
//! net-metering tariff, guideline-price signals, the utility's price-design
//! rule, and the billing engine that evaluates Eqns (2)–(3).
//!
//! # Sign convention
//!
//! The paper's Eqn (2) writes the seller branch as `−(p_h/W)(Σ_i y_i) y_n`.
//! With a community that is net-importing (`Σ y > 0`) and a customer selling
//! (`y_n < 0`) that expression is *positive* — a cost for selling — which
//! contradicts the prose ("the customer is paid with rate `p_h/W`"). We
//! follow the prose: the grid unit price at slot `h` is
//! `p_h · max(Σ_i y_i, 0)`, buyers pay it in full and sellers are credited
//! at `1/W` of it, so a seller's slot cost `(p_h/W)(Σ y) y_n` is negative
//! (a payment). See `CostModel` for details.
//!
//! # Examples
//!
//! ```
//! use nms_pricing::{CostModel, NetMeteringTariff, PriceSignal};
//! use nms_types::Horizon;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prices = PriceSignal::flat(Horizon::hourly_day(), 0.1)?;
//! let tariff = NetMeteringTariff::new(1.5)?;
//! let model = CostModel::new(&prices, tariff);
//! // Buying 2 kWh when the community draws 10 kWh total:
//! let buy = model.slot_cost(12, 10.0, 2.0);
//! assert!(buy.value() > 0.0);
//! // Selling 2 kWh is credited, at the partial rate:
//! let sell = model.slot_cost(12, 10.0, -2.0);
//! assert!(sell.value() < 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod billing;
mod cost;
mod signal;
mod utility;

pub use billing::{BillBreakdown, BillingEngine};
pub use cost::{CostModel, HoistedCostTable, NetMeteringTariff};
pub use signal::PriceSignal;
pub use utility::{Utility, UtilityConfig};
