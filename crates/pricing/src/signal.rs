//! The guideline-price signal broadcast to smart meters.

use std::fmt;

use serde::{Deserialize, Serialize};

use nms_types::{Horizon, PricePerKwh, TimeSeries, ValidateError};

/// A per-slot guideline price `p_h ≥ 0` over a horizon.
///
/// The utility broadcasts this signal ahead of time so that smart
/// controllers can schedule appliances (paper §1). Hacked meters receive a
/// *manipulated* copy — see `nms-attack`.
///
/// # Examples
///
/// ```
/// use nms_pricing::PriceSignal;
/// use nms_types::Horizon;
///
/// let tou = PriceSignal::time_of_use(Horizon::hourly_day(), 0.06, 0.18)?;
/// // Evening slots are on-peak.
/// assert!(tou.at(19).value() > tou.at(3).value());
/// # Ok::<(), nms_types::ValidateError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceSignal {
    prices: TimeSeries<f64>,
}

impl PriceSignal {
    /// Wraps raw per-slot prices (in $/kWh·kWh⁻¹ for the quadratic model;
    /// see `nms-types::PricePerKwh` on units).
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when any price is negative or non-finite.
    pub fn new(prices: TimeSeries<f64>) -> Result<Self, ValidateError> {
        for (slot, &p) in prices.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(ValidateError::new(format!(
                    "guideline price at slot {slot} must be finite and non-negative, got {p}"
                )));
            }
        }
        Ok(Self { prices })
    }

    /// A flat signal at `price` in every slot.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when `price` is negative or non-finite.
    pub fn flat(horizon: Horizon, price: f64) -> Result<Self, ValidateError> {
        Self::new(TimeSeries::filled(horizon, price))
    }

    /// A classic two-rate time-of-use signal: `off_peak` overnight and
    /// midday, `on_peak` during the morning (07:00–10:00) and evening
    /// (17:00–21:00) ramps.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when either rate is negative/non-finite or
    /// `on_peak < off_peak`.
    pub fn time_of_use(
        horizon: Horizon,
        off_peak: f64,
        on_peak: f64,
    ) -> Result<Self, ValidateError> {
        if on_peak < off_peak {
            return Err(ValidateError::new("on-peak rate below off-peak rate"));
        }
        Self::new(TimeSeries::from_fn(horizon, |slot| {
            let morning = horizon.slot_in_daily_window(slot, 7.0, 10.0);
            let evening = horizon.slot_in_daily_window(slot, 17.0, 21.0);
            if morning || evening {
                on_peak
            } else {
                off_peak
            }
        }))
    }

    /// The horizon the signal covers.
    #[inline]
    pub fn horizon(&self) -> Horizon {
        self.prices.horizon()
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Always `false`: horizons are non-empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Price at `slot` as a typed quantity.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the horizon.
    #[inline]
    pub fn at(&self, slot: usize) -> PricePerKwh {
        PricePerKwh::new(self.prices[slot])
    }

    /// The raw per-slot values.
    #[inline]
    pub fn as_series(&self) -> &TimeSeries<f64> {
        &self.prices
    }

    /// Consumes the signal, returning the raw series.
    #[inline]
    pub fn into_series(self) -> TimeSeries<f64> {
        self.prices
    }

    /// Mean price over the horizon.
    pub fn mean(&self) -> PricePerKwh {
        PricePerKwh::new(self.prices.mean())
    }

    /// Slot with the highest price (first on ties).
    pub fn peak_slot(&self) -> usize {
        self.prices.peak_slot()
    }

    /// RMSE against another signal (used to compare predicted vs received
    /// guideline prices).
    ///
    /// # Errors
    ///
    /// Returns an error when the signals cover different slot counts.
    pub fn rmse(&self, other: &Self) -> Result<f64, nms_types::HorizonMismatchError> {
        self.prices.rmse(&other.prices)
    }

    /// Returns a copy with `f` applied to each slot's price, re-validated.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] if `f` produces a negative or non-finite
    /// price.
    pub fn map(&self, f: impl FnMut(&f64) -> f64) -> Result<Self, ValidateError> {
        Self::new(self.prices.map(f))
    }
}

impl fmt::Display for PriceSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "price signal: mean {:.4}, peak {:.4} @ slot {}",
            self.prices.mean(),
            self.prices.peak(),
            self.peak_slot()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    #[test]
    fn rejects_negative_and_nan_prices() {
        let mut s = TimeSeries::filled(day(), 0.1);
        s[3] = -0.1;
        assert!(PriceSignal::new(s).is_err());
        let mut s = TimeSeries::filled(day(), 0.1);
        s[3] = f64::NAN;
        assert!(PriceSignal::new(s).is_err());
    }

    #[test]
    fn zero_prices_are_legal() {
        // The paper's attack zeroes prices; the signal type must represent it.
        assert!(PriceSignal::flat(day(), 0.0).is_ok());
    }

    #[test]
    fn time_of_use_shape() {
        let tou = PriceSignal::time_of_use(day(), 0.06, 0.18).unwrap();
        assert_eq!(tou.at(8).value(), 0.18); // morning ramp
        assert_eq!(tou.at(19).value(), 0.18); // evening ramp
        assert_eq!(tou.at(3).value(), 0.06); // overnight
        assert_eq!(tou.at(13).value(), 0.06); // midday
        assert!(PriceSignal::time_of_use(day(), 0.2, 0.1).is_err());
    }

    #[test]
    fn time_of_use_repeats_across_days() {
        let tou = PriceSignal::time_of_use(Horizon::hourly(48), 0.06, 0.18).unwrap();
        for h in 0..24 {
            assert_eq!(tou.at(h).value(), tou.at(h + 24).value());
        }
    }

    #[test]
    fn map_revalidates() {
        let tou = PriceSignal::time_of_use(day(), 0.06, 0.18).unwrap();
        assert!(tou.map(|p| p * 2.0).is_ok());
        assert!(tou.map(|p| p - 1.0).is_err());
    }

    #[test]
    fn rmse_between_signals() {
        let a = PriceSignal::flat(day(), 0.1).unwrap();
        let b = PriceSignal::flat(day(), 0.2).unwrap();
        assert!((a.rmse(&b).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_mean() {
        let text = PriceSignal::flat(day(), 0.1).unwrap().to_string();
        assert!(text.contains("mean 0.1000"));
    }

    proptest! {
        #[test]
        fn prop_flat_signal_mean_is_rate(rate in 0.0_f64..2.0) {
            let signal = PriceSignal::flat(day(), rate).unwrap();
            prop_assert!((signal.mean().value() - rate).abs() < 1e-12);
        }
    }
}
