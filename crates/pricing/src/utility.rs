//! The utility's guideline-price design rule.
//!
//! The paper's core observation is causal: *"Net metering changes the grid
//! energy demand, which is considered by the utility when designing the
//! guideline price"* (§1). This module implements that link — the utility
//! maps its forecast of per-customer net grid demand into the broadcast
//! guideline price, so any change in net demand (e.g. the midday PV dip)
//! shows up in the price signal.

use serde::{Deserialize, Serialize};

use nms_types::{TimeSeries, ValidateError};

use crate::PriceSignal;

/// Parameters of the affine demand-to-price rule
/// `p_h = base + sensitivity · max(D_h, 0) / N`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityConfig {
    /// Price floor charged even at zero demand ($/kWh-coefficient).
    pub base_price: f64,
    /// Price increase per kWh of average per-customer net demand.
    pub sensitivity: f64,
    /// Hard cap on the designed price.
    pub price_cap: f64,
    /// Granularity ($/kWh) the published price is rounded to, `0.0` for
    /// continuous prices (the historical behavior). Real tariffs are quoted
    /// at finite precision — e.g. `0.001` is tenth-of-a-cent pricing.
    /// Besides realism, a positive quantum makes the market's fixed-point
    /// clearing iteration a map on a *finite* price set, so it reaches a
    /// bitwise-exact fixed point (or short cycle) instead of chasing the
    /// last float bits of a chaotic game equilibrium forever — which is
    /// what lets a cross-day solver cache answer repeat clearings
    /// wholesale.
    #[serde(default)]
    pub price_quantum: f64,
}

impl UtilityConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when any parameter is negative/non-finite
    /// or the cap is below the base price.
    pub fn validate(&self) -> Result<(), ValidateError> {
        for (name, v) in [
            ("base_price", self.base_price),
            ("sensitivity", self.sensitivity),
            ("price_cap", self.price_cap),
            ("price_quantum", self.price_quantum),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(ValidateError::new(format!(
                    "{name} must be finite and non-negative, got {v}"
                )));
            }
        }
        if self.price_cap < self.base_price {
            return Err(ValidateError::new("price cap below base price"));
        }
        Ok(())
    }
}

impl Default for UtilityConfig {
    fn default() -> Self {
        Self {
            base_price: 0.04,
            sensitivity: 0.03,
            price_cap: 1.0,
            price_quantum: 0.0,
        }
    }
}

/// The utility serving the community: designs guideline prices from expected
/// net demand.
///
/// # Examples
///
/// ```
/// use nms_pricing::{Utility, UtilityConfig};
/// use nms_types::{Horizon, TimeSeries};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let utility = Utility::new(UtilityConfig::default(), 100)?;
/// // Demand of 2 kWh per customer in every slot:
/// let demand = TimeSeries::filled(Horizon::hourly_day(), 200.0);
/// let price = utility.design_price(&demand);
/// assert!(price.at(0).value() > UtilityConfig::default().base_price);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Utility {
    config: UtilityConfig,
    customers: usize,
}

impl Utility {
    /// Creates a utility that serves `customers` homes.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] on an invalid config or zero customers.
    pub fn new(config: UtilityConfig, customers: usize) -> Result<Self, ValidateError> {
        config.validate()?;
        if customers == 0 {
            return Err(ValidateError::new(
                "utility must serve at least one customer",
            ));
        }
        Ok(Self { config, customers })
    }

    /// The configured price rule.
    #[inline]
    pub fn config(&self) -> &UtilityConfig {
        &self.config
    }

    /// Number of customers served.
    #[inline]
    pub fn customers(&self) -> usize {
        self.customers
    }

    /// Designs the guideline price from an expected *net grid demand* series
    /// (`Σ_n y_n^h` in kWh per slot; negative slots — community exporting —
    /// price at the base rate).
    ///
    /// # Panics
    ///
    /// Never panics on shape: the output always covers the input's horizon.
    pub fn design_price(&self, expected_net_demand: &TimeSeries<f64>) -> PriceSignal {
        let n = self.customers as f64;
        let series = expected_net_demand.map(|&d| {
            let per_customer = d.max(0.0) / n;
            let raw = self.config.base_price + self.config.sensitivity * per_customer;
            let published = if self.config.price_quantum > 0.0 {
                (raw / self.config.price_quantum).round() * self.config.price_quantum
            } else {
                raw
            };
            published.min(self.config.price_cap)
        });
        PriceSignal::new(series)
            .expect("designed prices are non-negative and finite by construction")
    }

    /// Inverse of [`design_price`](Self::design_price) below the cap:
    /// recovers per-customer net demand from a price. Used by detectors to
    /// reason about what demand a received price implies.
    pub fn implied_demand_per_customer(&self, price: &PriceSignal) -> TimeSeries<f64> {
        price.as_series().map(|&p| {
            if self.config.sensitivity == 0.0 {
                0.0
            } else {
                ((p - self.config.base_price) / self.config.sensitivity).max(0.0)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_types::Horizon;
    use proptest::prelude::*;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    #[test]
    fn config_validation() {
        assert!(UtilityConfig::default().validate().is_ok());
        let bad = UtilityConfig {
            base_price: -0.1,
            ..UtilityConfig::default()
        };
        assert!(bad.validate().is_err());
        let inverted = UtilityConfig {
            base_price: 0.5,
            price_cap: 0.1,
            ..UtilityConfig::default()
        };
        assert!(inverted.validate().is_err());
        assert!(Utility::new(UtilityConfig::default(), 0).is_err());
    }

    #[test]
    fn price_tracks_demand() {
        let utility = Utility::new(UtilityConfig::default(), 10).unwrap();
        let mut demand = TimeSeries::filled(day(), 10.0);
        demand[19] = 50.0;
        let price = utility.design_price(&demand);
        assert!(price.at(19).value() > price.at(3).value());
        assert_eq!(price.peak_slot(), 19);
    }

    #[test]
    fn exporting_slots_priced_at_base() {
        let utility = Utility::new(UtilityConfig::default(), 10).unwrap();
        let mut demand = TimeSeries::filled(day(), 10.0);
        demand[12] = -30.0; // net export at noon
        let price = utility.design_price(&demand);
        assert!((price.at(12).value() - utility.config().base_price).abs() < 1e-12);
    }

    #[test]
    fn cap_is_enforced() {
        let config = UtilityConfig {
            base_price: 0.04,
            sensitivity: 0.03,
            price_cap: 0.1,
            price_quantum: 0.0,
        };
        let utility = Utility::new(config, 1).unwrap();
        let demand = TimeSeries::filled(day(), 1e6);
        let price = utility.design_price(&demand);
        assert!(price.as_series().iter().all(|&p| p <= 0.1 + 1e-12));
    }

    #[test]
    fn quantized_prices_land_on_the_grid() {
        let config = UtilityConfig {
            price_quantum: 0.005,
            ..UtilityConfig::default()
        };
        assert!(config.validate().is_ok());
        let utility = Utility::new(config, 10).unwrap();
        let demand = TimeSeries::from_fn(day(), |h| 3.0 + 1.7 * h as f64);
        let price = utility.design_price(&demand);
        for (h, &p) in price.as_series().iter().enumerate() {
            let cells = p / 0.005;
            assert!(
                (cells - cells.round()).abs() < 1e-9,
                "slot {h}: price {p} is off the 0.005 grid"
            );
            assert!(p <= config.price_cap);
        }
        // Nearby demands collapse onto the same published price: the
        // mechanism that gives the clearing iteration an exact fixed point.
        let a = utility.design_price(&TimeSeries::filled(day(), 10.0));
        let b = utility.design_price(&TimeSeries::filled(day(), 10.1));
        assert_eq!(
            a.at(0).value().to_bits(),
            b.at(0).value().to_bits(),
            "within-cell demand wiggle must not move the published price"
        );
        // A continuous (quantum 0) utility still prices continuously.
        let c = Utility::new(UtilityConfig::default(), 10).unwrap();
        assert_ne!(
            c.design_price(&TimeSeries::filled(day(), 10.0)).at(0).value().to_bits(),
            c.design_price(&TimeSeries::filled(day(), 10.1)).at(0).value().to_bits(),
        );
        // Rejects non-finite quanta.
        let bad = UtilityConfig {
            price_quantum: f64::NAN,
            ..UtilityConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn implied_demand_inverts_design_below_cap() {
        let utility = Utility::new(UtilityConfig::default(), 20).unwrap();
        let demand = TimeSeries::from_fn(day(), |h| 5.0 + h as f64);
        let price = utility.design_price(&demand);
        let implied = utility.implied_demand_per_customer(&price);
        for h in 0..24 {
            let per_customer = demand[h] / 20.0;
            assert!(
                (implied[h] - per_customer).abs() < 1e-9,
                "slot {h}: {} vs {}",
                implied[h],
                per_customer
            );
        }
    }

    #[test]
    fn zero_sensitivity_implies_flat_price() {
        let config = UtilityConfig {
            sensitivity: 0.0,
            ..UtilityConfig::default()
        };
        let utility = Utility::new(config, 5).unwrap();
        let demand = TimeSeries::from_fn(day(), |h| h as f64 * 3.0);
        let price = utility.design_price(&demand);
        assert!(price
            .as_series()
            .iter()
            .all(|&p| (p - config.base_price).abs() < 1e-12));
        // Implied demand degenerates to zero rather than dividing by zero.
        assert!(utility
            .implied_demand_per_customer(&price)
            .iter()
            .all(|&d| d == 0.0));
    }

    proptest! {
        #[test]
        fn prop_price_monotone_in_demand(
            d1 in 0.0_f64..100.0,
            d2 in 0.0_f64..100.0,
        ) {
            let utility = Utility::new(UtilityConfig::default(), 10).unwrap();
            let p1 = utility.design_price(&TimeSeries::filled(day(), d1)).at(0).value();
            let p2 = utility.design_price(&TimeSeries::filled(day(), d2)).at(0).value();
            if d1 <= d2 {
                prop_assert!(p1 <= p2 + 1e-12);
            }
        }
    }
}
