//! Guideline-price prediction (§4.1).

use std::error::Error;
use std::fmt;

use nms_forecast::{
    seasonal_mean_forecast, FeatureConfig, Kernel, PriceHistory, Svr, SvrParams, TrainSvrError,
};
use nms_pricing::PriceSignal;
use nms_types::{FallbackRecord, Horizon, RetryPolicy, SolveBudget, TimeSeries, ValidateError};

/// Why price prediction failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PredictPriceError {
    /// The SVR could not be trained.
    Train(TrainSvrError),
    /// The history is unusable (too short, missing forecasts, …).
    History(ValidateError),
    /// [`PricePredictor::predict_day`] was called before
    /// [`PricePredictor::train`].
    NotTrained,
}

impl fmt::Display for PredictPriceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Train(err) => write!(f, "training failed: {err}"),
            Self::History(err) => write!(f, "history unusable: {err}"),
            Self::NotTrained => write!(f, "predictor has not been trained"),
        }
    }
}

impl Error for PredictPriceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Train(err) => Some(err),
            Self::History(err) => Some(err),
            Self::NotTrained => None,
        }
    }
}

impl From<TrainSvrError> for PredictPriceError {
    fn from(err: TrainSvrError) -> Self {
        Self::Train(err)
    }
}

impl From<ValidateError> for PredictPriceError {
    fn from(err: ValidateError) -> Self {
        Self::History(err)
    }
}

/// Outcome of [`PricePredictor::train_robust`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Extra SMO attempts consumed beyond the first.
    pub retries: usize,
    /// The winning fit converged (false implies `fallback` is set).
    pub converged: bool,
    /// A watchdog [`SolveBudget`](nms_types::SolveBudget) cut training
    /// short (implies the baseline fallback was taken).
    pub budget_breached: bool,
    /// Set when the predictor dropped to the seasonal-mean baseline.
    pub fallback: Option<FallbackRecord>,
}

/// Day-ahead guideline-price prediction with SVR.
///
/// The *naive* variant reproduces the state of the art of \[8\]: the model
/// sees only the lagged price series. The *aware* variant implements the
/// paper's `G(p, V, D)` map: lagged net demand and the target day's
/// renewable-generation forecast enter the feature vector, so the model can
/// anticipate the net-metering-induced midday price dip.
#[derive(Debug, Clone)]
pub struct PricePredictor {
    features: FeatureConfig,
    params: SvrParams,
    model: Option<Svr>,
    baseline_fallback: bool,
}

impl PricePredictor {
    /// The naive predictor of \[8\] (price lags only).
    pub fn naive(slots_per_day: usize) -> Self {
        Self {
            features: FeatureConfig::naive(slots_per_day),
            params: Self::default_params(),
            model: None,
            baseline_fallback: false,
        }
    }

    /// The paper's net-metering-aware predictor.
    pub fn net_metering_aware(slots_per_day: usize) -> Self {
        Self {
            features: FeatureConfig::net_metering_aware(slots_per_day),
            params: Self::default_params(),
            model: None,
            baseline_fallback: false,
        }
    }

    /// Builds a predictor from explicit features and hyperparameters.
    pub fn with_config(features: FeatureConfig, params: SvrParams) -> Self {
        Self {
            features,
            params,
            model: None,
            baseline_fallback: false,
        }
    }

    fn default_params() -> SvrParams {
        SvrParams {
            kernel: Kernel::Rbf { gamma: 0.3 },
            c: 50.0,
            epsilon: 0.0005,
            max_passes: 80,
            ..SvrParams::default()
        }
    }

    /// The feature configuration in use.
    #[inline]
    pub fn features(&self) -> &FeatureConfig {
        &self.features
    }

    /// `true` once [`train`](Self::train) or
    /// [`train_robust`](Self::train_robust) has succeeded — possibly by
    /// dropping to the seasonal baseline.
    #[inline]
    pub fn is_trained(&self) -> bool {
        self.model.is_some() || self.baseline_fallback
    }

    /// `true` when predictions come from the seasonal-mean baseline rather
    /// than a fitted SVR.
    #[inline]
    pub fn is_baseline_fallback(&self) -> bool {
        self.baseline_fallback
    }

    /// Fits the SVR on the recorded history.
    ///
    /// # Errors
    ///
    /// Returns [`PredictPriceError`] when the history is shorter than the
    /// feature window or training fails.
    pub fn train(&mut self, history: &PriceHistory) -> Result<(), PredictPriceError> {
        self.features.validate()?;
        let dataset = history.training_set(&self.features);
        if dataset.is_empty() {
            return Err(PredictPriceError::History(ValidateError::new(format!(
                "history of {} slots yields no training samples (max lag {})",
                history.len(),
                self.features.max_lag()
            ))));
        }
        self.model = Some(Svr::fit(&dataset.xs, &dataset.ys, &self.params)?);
        self.baseline_fallback = false;
        Ok(())
    }

    /// Fits the SVR under a [`RetryPolicy`], degrading instead of failing:
    /// retries escalate the SMO pass budget, and when every attempt either
    /// fails to converge or trips on non-finite (corrupted) data the
    /// predictor drops to the seasonal-mean baseline so the pipeline can
    /// keep producing verdicts. The drop is reported as a
    /// [`FallbackRecord`].
    ///
    /// # Errors
    ///
    /// Returns [`PredictPriceError`] only for structural problems — invalid
    /// features/policy/hyperparameters or a history too short to yield any
    /// training sample. Numerical trouble degrades; it does not error.
    pub fn train_robust(
        &mut self,
        history: &PriceHistory,
        policy: &RetryPolicy,
    ) -> Result<TrainReport, PredictPriceError> {
        self.train_robust_budgeted(history, policy, &SolveBudget::unlimited())
    }

    /// Like [`PricePredictor::train_robust`], with the whole retry sequence
    /// additionally watched by a [`SolveBudget`]. A breach abandons SMO
    /// training — recorded as a `BudgetExceeded` fallback reason — and
    /// drops to the seasonal-mean baseline so the pipeline keeps moving.
    ///
    /// # Errors
    ///
    /// Same as [`PricePredictor::train_robust`], plus an invalid budget.
    pub fn train_robust_budgeted(
        &mut self,
        history: &PriceHistory,
        policy: &RetryPolicy,
        budget: &SolveBudget,
    ) -> Result<TrainReport, PredictPriceError> {
        self.features.validate()?;
        let dataset = history.training_set(&self.features);
        if dataset.is_empty() {
            return Err(PredictPriceError::History(ValidateError::new(format!(
                "history of {} slots yields no training samples (max lag {})",
                history.len(),
                self.features.max_lag()
            ))));
        }
        match Svr::fit_with_retry_budgeted(&dataset.xs, &dataset.ys, &self.params, policy, budget) {
            Ok((model, report)) if report.converged => {
                self.model = Some(model);
                self.baseline_fallback = false;
                Ok(TrainReport {
                    retries: report.attempts - 1,
                    converged: true,
                    budget_breached: false,
                    fallback: None,
                })
            }
            Ok((_, report)) if report.budget_breached => Ok(self.drop_to_baseline(
                report.attempts - 1,
                true,
                format!(
                    "BudgetExceeded: watchdog stopped SMO after {} pass(es) in attempt {}",
                    report.passes, report.attempts
                ),
            )),
            Ok((_, report)) => Ok(self.drop_to_baseline(
                report.attempts - 1,
                false,
                format!(
                    "SMO exhausted {} attempt(s) without converging",
                    report.attempts
                ),
            )),
            Err(TrainSvrError::NonFiniteData) => Ok(self.drop_to_baseline(
                0,
                false,
                "training data contains non-finite values".to_string(),
            )),
            Err(err) => Err(err.into()),
        }
    }

    fn drop_to_baseline(&mut self, retries: usize, budget_breached: bool, reason: String) -> TrainReport {
        self.model = None;
        self.baseline_fallback = true;
        TrainReport {
            retries,
            converged: false,
            budget_breached,
            fallback: Some(FallbackRecord::new(
                "price-predictor",
                "svr",
                "seasonal-baseline",
                reason,
            )),
        }
    }

    /// Predicts the guideline price for the `horizon.slots()` slots
    /// following the recorded history.
    ///
    /// `generation_forecast` supplies the community renewable forecast for
    /// the target window (required by the aware variant; ignored by the
    /// naive one).
    ///
    /// # Errors
    ///
    /// Returns [`PredictPriceError::NotTrained`] before training, or a
    /// history error when the forecast inputs are unusable.
    pub fn predict_day(
        &self,
        history: &PriceHistory,
        horizon: Horizon,
        generation_forecast: Option<&TimeSeries<f64>>,
    ) -> Result<PriceSignal, PredictPriceError> {
        let Some(model) = self.model.as_ref() else {
            if self.baseline_fallback {
                return self.predict_baseline(history, horizon);
            }
            return Err(PredictPriceError::NotTrained);
        };
        let forecast_vec: Option<Vec<f64>> =
            generation_forecast.map(|g| g.iter().copied().collect());
        let predictions = history.forecast(
            model,
            &self.features,
            horizon.slots(),
            forecast_vec.as_deref(),
        )?;
        let series = TimeSeries::from_values(horizon, predictions)
            .expect("forecast length matches horizon by construction");
        PriceSignal::new(series).map_err(PredictPriceError::History)
    }

    /// Seasonal-mean guideline prices for the degraded path: the mean price
    /// at each time-of-day slot across the recorded history. Prices can
    /// never be negative, so the baseline needs no clamping.
    fn predict_baseline(
        &self,
        history: &PriceHistory,
        horizon: Horizon,
    ) -> Result<PriceSignal, PredictPriceError> {
        let values = seasonal_mean_forecast(history, horizon.slots())?;
        let series = TimeSeries::from_values(horizon, values)
            .expect("baseline forecast length matches horizon by construction");
        PriceSignal::new(series).map_err(PredictPriceError::History)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic per-day cloud-cover factors: tomorrow's weather is not
    /// yesterday's, so a price-lag-only model cannot anticipate the
    /// PV-induced dip while a model seeing the generation forecast can.
    const WEATHER: [f64; 6] = [1.0, 0.35, 0.8, 0.25, 0.95, 0.55];

    fn pv_at(day: usize, hour: f64) -> f64 {
        let weather = WEATHER[day % WEATHER.len()];
        if (6.0..18.0).contains(&hour) {
            weather * 80.0 * (1.0 - ((hour - 12.0) / 6.0).powi(2))
        } else {
            0.0
        }
    }

    /// History where the price is driven by demand minus weather-varying PV.
    fn coupled_history(days: usize) -> (PriceHistory, TimeSeries<f64>) {
        let spd = 24;
        let mut prices = Vec::new();
        let mut generation = Vec::new();
        let mut demand = Vec::new();
        for t in 0..spd * days {
            let hour = (t % spd) as f64;
            let pv = pv_at(t / spd, hour);
            let d = 120.0 + 40.0 * (-((hour - 19.0) / 2.5).powi(2)).exp();
            prices.push(0.04 + 0.0008 * (d - pv).max(0.0));
            generation.push(pv);
            demand.push(d);
        }
        let history = PriceHistory::new(prices, generation, demand, spd).unwrap();
        // Forecast for the day immediately after the history.
        let forecast = TimeSeries::from_fn(Horizon::hourly_day(), |h| pv_at(days, h as f64));
        (history, forecast)
    }

    #[test]
    fn untrained_predictor_errors() {
        let (history, _) = coupled_history(5);
        let predictor = PricePredictor::naive(24);
        let err = predictor
            .predict_day(&history, Horizon::hourly_day(), None)
            .unwrap_err();
        assert_eq!(err, PredictPriceError::NotTrained);
        assert!(!predictor.is_trained());
    }

    #[test]
    fn train_requires_enough_history() {
        let short = PriceHistory::new(vec![0.1; 10], vec![0.0; 10], vec![1.0; 10], 24).unwrap();
        let mut predictor = PricePredictor::naive(24);
        assert!(matches!(
            predictor.train(&short),
            Err(PredictPriceError::History(_))
        ));
    }

    #[test]
    fn aware_predictor_tracks_pv_induced_dip() {
        let (history, forecast) = coupled_history(8);
        let mut aware = PricePredictor::net_metering_aware(24);
        aware.train(&history).unwrap();
        assert!(aware.is_trained());
        let predicted = aware
            .predict_day(&history, Horizon::hourly_day(), Some(&forecast))
            .unwrap();
        // Midday dip: noon price below morning-shoulder price.
        assert!(
            predicted.at(12).value() < predicted.at(7).value(),
            "noon {} vs 07:00 {}",
            predicted.at(12),
            predicted.at(7)
        );
    }

    #[test]
    fn naive_predictor_ignores_generation_forecast() {
        let (history, _) = coupled_history(8);
        let mut naive = PricePredictor::naive(24);
        naive.train(&history).unwrap();
        // Predicting without any forecast must work for the naive variant.
        let predicted = naive
            .predict_day(&history, Horizon::hourly_day(), None)
            .unwrap();
        assert_eq!(predicted.len(), 24);
        assert!(predicted.as_series().iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn aware_predictor_requires_forecast() {
        let (history, _) = coupled_history(8);
        let mut aware = PricePredictor::net_metering_aware(24);
        aware.train(&history).unwrap();
        assert!(matches!(
            aware.predict_day(&history, Horizon::hourly_day(), None),
            Err(PredictPriceError::History(_))
        ));
    }

    #[test]
    fn aware_beats_naive_on_coupled_prices() {
        let spd = 24;
        // Train on 8 days; the held-out day is day index 8.
        let (train, forecast) = coupled_history(8);
        let (full, _) = coupled_history(9);
        let actual = &full.prices()[spd * 8..];

        let horizon = Horizon::hourly_day();
        let mut aware = PricePredictor::net_metering_aware(spd);
        aware.train(&train).unwrap();
        let aware_pred = aware.predict_day(&train, horizon, Some(&forecast)).unwrap();

        let mut naive = PricePredictor::naive(spd);
        naive.train(&train).unwrap();
        let naive_pred = naive.predict_day(&train, horizon, None).unwrap();

        let rmse = |pred: &PriceSignal| {
            nms_forecast::rmse(
                &pred.as_series().iter().copied().collect::<Vec<_>>(),
                actual,
            )
        };
        // Day 8's weather (0.8) differs sharply from day 7's (0.55) and the
        // naive model can only extrapolate price history; the aware model
        // sees the generation forecast and must do strictly better.
        assert!(
            rmse(&aware_pred) < rmse(&naive_pred),
            "aware {} vs naive {}",
            rmse(&aware_pred),
            rmse(&naive_pred)
        );
    }

    #[test]
    fn train_robust_converges_like_train() {
        let (history, forecast) = coupled_history(8);
        let mut aware = PricePredictor::net_metering_aware(24);
        let report = aware
            .train_robust(&history, &RetryPolicy::default())
            .unwrap();
        assert!(report.converged);
        assert!(report.fallback.is_none());
        assert!(!aware.is_baseline_fallback());
        aware
            .predict_day(&history, Horizon::hourly_day(), Some(&forecast))
            .unwrap();
    }

    #[test]
    fn strangled_smo_drops_to_seasonal_baseline() {
        let (history, _) = coupled_history(8);
        let mut naive = PricePredictor::with_config(
            FeatureConfig::naive(24),
            SvrParams {
                max_passes: 1,
                tolerance: 0.0, // improvements can never drop below zero
                ..SvrParams::default()
            },
        );
        let policy = RetryPolicy {
            max_attempts: 2,
            iteration_growth: 1.0,
            reseed_stride: 1,
        };
        let report = naive.train_robust(&history, &policy).unwrap();
        assert!(!report.converged);
        assert_eq!(report.retries, 1);
        let record = report.fallback.expect("fallback recorded");
        assert_eq!(record.component, "price-predictor");
        assert_eq!(record.from, "svr");
        assert_eq!(record.to, "seasonal-baseline");
        assert!(naive.is_trained() && naive.is_baseline_fallback());

        // The degraded predictor still produces a full price signal — the
        // seasonal mean of the history.
        let predicted = naive
            .predict_day(&history, Horizon::hourly_day(), None)
            .unwrap();
        assert_eq!(predicted.len(), 24);
        let expected = seasonal_mean_forecast(&history, 24).unwrap();
        for (h, &want) in expected.iter().enumerate() {
            assert!((predicted.at(h).value() - want).abs() < 1e-12);
        }
    }

    #[test]
    fn budget_breach_drops_to_seasonal_baseline() {
        let (history, _) = coupled_history(8);
        let mut naive = PricePredictor::with_config(
            FeatureConfig::naive(24),
            SvrParams {
                max_passes: 50,
                tolerance: 0.0, // can never converge on its own
                ..SvrParams::default()
            },
        );
        let budget = SolveBudget {
            max_iterations: Some(1),
            max_wall_secs: None,
        };
        let report = naive
            .train_robust_budgeted(&history, &RetryPolicy::default(), &budget)
            .unwrap();
        assert!(report.budget_breached);
        assert!(!report.converged);
        assert_eq!(report.retries, 0, "breach must stop further attempts");
        let record = report.fallback.expect("fallback recorded");
        assert!(
            record.reason.starts_with("BudgetExceeded"),
            "reason: {}",
            record.reason
        );
        assert!(naive.is_baseline_fallback());
        // The degraded predictor still produces a full finite signal.
        let predicted = naive
            .predict_day(&history, Horizon::hourly_day(), None)
            .unwrap();
        assert!(predicted.as_series().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn corrupted_history_drops_to_seasonal_baseline() {
        // A NaN reading slips past construction-time validation through
        // `push`: training data is poisoned, but the seasonal baseline
        // skips non-finite entries, so the degraded path stays finite.
        let (mut history, _) = coupled_history(8);
        history.push(f64::NAN, 0.0, 120.0);
        let mut naive = PricePredictor::naive(24);
        let report = naive
            .train_robust(&history, &RetryPolicy::default())
            .unwrap();
        assert!(!report.converged);
        assert!(report.fallback.is_some());
        assert!(naive.is_baseline_fallback());
        let predicted = naive
            .predict_day(&history, Horizon::hourly_day(), None)
            .unwrap();
        assert!(predicted.as_series().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn error_display() {
        assert!(PredictPriceError::NotTrained
            .to_string()
            .contains("trained"));
        let err = PredictPriceError::History(ValidateError::new("too short"));
        assert!(err.to_string().contains("too short"));
    }
}
