//! POMDP-based long-term detection (§4.2).
//!
//! States are hacked-meter *buckets* (`s_i` = "about `i/K` of the fleet is
//! compromised"); observations are the single-event detector's bucket
//! estimates; actions are `a_0` (keep monitoring) and `a_1` (check & fix).
//! The transition model is a drift-up random walk under monitoring and a
//! reset under fixing; the observation model is either an analytic
//! confusion matrix or one trained from calibration episodes.

use serde::{Deserialize, Serialize};

use nms_pomdp::{Belief, PbviConfig, PbviPolicy, Policy, Pomdp, QmdpPolicy};
use nms_types::ValidateError;

/// The two actions of the paper's POMDP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorAction {
    /// `a_0`: ignore and continue monitoring.
    Monitor,
    /// `a_1`: check and fix the hacked smart meters (incurs labor cost).
    Fix,
}

impl DetectorAction {
    /// The POMDP action index.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Self::Monitor => 0,
            Self::Fix => 1,
        }
    }

    /// Decodes a POMDP action index.
    ///
    /// # Panics
    ///
    /// Panics on an index other than 0 or 1.
    #[deprecated(note = "use `DetectorAction::try_from(index)` for a typed error instead")]
    pub fn from_index(index: usize) -> Self {
        match Self::try_from(index) {
            Ok(action) => action,
            Err(err) => panic!("{err}"),
        }
    }
}

/// The typed error for an out-of-range POMDP action index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidActionIndex(pub usize);

impl std::fmt::Display for InvalidActionIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "detector POMDP has two actions, got index {}", self.0)
    }
}

impl std::error::Error for InvalidActionIndex {}

impl TryFrom<usize> for DetectorAction {
    type Error = InvalidActionIndex;

    fn try_from(index: usize) -> Result<Self, Self::Error> {
        match index {
            0 => Ok(Self::Monitor),
            1 => Ok(Self::Fix),
            other => Err(InvalidActionIndex(other)),
        }
    }
}

/// Which solver backs the policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PomdpSolverKind {
    /// Fast MDP-based approximation.
    Qmdp,
    /// Point-based value iteration (the faithful choice; see DESIGN.md).
    Pbvi(PbviConfig),
}

/// Configuration of the long-term detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LongTermConfig {
    /// Number of hacked-meter buckets (states).
    pub buckets: usize,
    /// Per-slot probability that the compromise level climbs one bucket
    /// while monitoring.
    pub intrusion_drift: f64,
    /// Probability that the single-event observation lands on the true
    /// bucket (off-by-one buckets split the remainder). Used when no
    /// trained observation model is supplied.
    pub observation_accuracy: f64,
    /// Reward penalty per bucket level per slot (damage hacked meters do).
    pub damage_per_bucket: f64,
    /// Labor cost charged when playing [`DetectorAction::Fix`].
    pub labor_cost: f64,
    /// Discount factor.
    pub discount: f64,
    /// Solver choice.
    pub solver: PomdpSolverKind,
}

impl LongTermConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] for out-of-range probabilities, fewer than
    /// two buckets, negative costs, or a discount outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.buckets < 2 {
            return Err(ValidateError::new("need at least two buckets"));
        }
        for (name, p) in [
            ("intrusion_drift", self.intrusion_drift),
            ("observation_accuracy", self.observation_accuracy),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(ValidateError::new(format!(
                    "{name} must be in [0, 1], got {p}"
                )));
            }
        }
        for (name, c) in [
            ("damage_per_bucket", self.damage_per_bucket),
            ("labor_cost", self.labor_cost),
        ] {
            if !c.is_finite() || c < 0.0 {
                return Err(ValidateError::new(format!(
                    "{name} must be finite and non-negative, got {c}"
                )));
            }
        }
        if !(0.0..1.0).contains(&self.discount) {
            return Err(ValidateError::new("discount must be in [0, 1)"));
        }
        Ok(())
    }
}

impl Default for LongTermConfig {
    fn default() -> Self {
        Self {
            buckets: 6,
            intrusion_drift: 0.25,
            observation_accuracy: 0.9,
            damage_per_bucket: 4.0,
            labor_cost: 6.0,
            discount: 0.9,
            solver: PomdpSolverKind::Qmdp,
        }
    }
}

enum PolicyImpl {
    Qmdp(QmdpPolicy),
    Pbvi(PbviPolicy),
}

impl PolicyImpl {
    fn action(&self, belief: &Belief) -> usize {
        match self {
            Self::Qmdp(p) => p.action(belief),
            Self::Pbvi(p) => p.action(belief),
        }
    }

    fn value(&self, belief: &Belief) -> f64 {
        match self {
            Self::Qmdp(p) => p.value(belief),
            Self::Pbvi(p) => p.value(belief),
        }
    }
}

/// The stateful long-term detector: POMDP model + solved policy + tracked
/// belief.
pub struct LongTermDetector {
    pomdp: Pomdp,
    policy: PolicyImpl,
    belief: Belief,
    config: LongTermConfig,
}

impl std::fmt::Debug for LongTermDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LongTermDetector")
            .field("config", &self.config)
            .field("belief", &self.belief)
            .finish_non_exhaustive()
    }
}

impl LongTermDetector {
    /// Builds the detector with the analytic observation confusion matrix
    /// derived from `config.observation_accuracy`.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] on an invalid configuration.
    pub fn new(config: LongTermConfig) -> Result<Self, ValidateError> {
        config.validate()?;
        let z = analytic_observation_matrix(config.buckets, config.observation_accuracy);
        Self::with_observation_matrix(config, z)
    }

    /// Builds the detector with a trained observation matrix
    /// `z[true_bucket][observed_bucket]` (e.g. from
    /// [`nms_pomdp::estimate_from_histories`]).
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] on an invalid configuration or a matrix
    /// the POMDP builder rejects.
    pub fn with_observation_matrix(
        config: LongTermConfig,
        z: Vec<Vec<f64>>,
    ) -> Result<Self, ValidateError> {
        config.validate()?;
        let k = config.buckets;
        let monitor_t = drift_transition(k, config.intrusion_drift);
        let fix_t = reset_transition(k);
        let pomdp = Pomdp::builder(k, 2, k)
            .transition(DetectorAction::Monitor.index(), monitor_t)
            .transition(DetectorAction::Fix.index(), fix_t)
            .observation(DetectorAction::Monitor.index(), z.clone())
            .observation(DetectorAction::Fix.index(), z)
            .reward_fn(|action, state, _| {
                let damage = -config.damage_per_bucket * state as f64;
                let labor = if action == DetectorAction::Fix.index() {
                    -config.labor_cost
                } else {
                    0.0
                };
                damage + labor
            })
            .discount(config.discount)
            .build()
            .map_err(|e| ValidateError::new(e.to_string()))?;
        let policy = match config.solver {
            PomdpSolverKind::Qmdp => PolicyImpl::Qmdp(QmdpPolicy::solve(&pomdp, 1e-9, 5000)),
            PomdpSolverKind::Pbvi(pbvi_config) => {
                PolicyImpl::Pbvi(PbviPolicy::solve(&pomdp, &pbvi_config))
            }
        };
        Ok(Self {
            belief: Belief::point(k, 0),
            pomdp,
            policy,
            config,
        })
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &LongTermConfig {
        &self.config
    }

    /// The current belief over buckets.
    #[inline]
    pub fn belief(&self) -> &Belief {
        &self.belief
    }

    /// The most likely bucket under the current belief.
    pub fn estimated_bucket(&self) -> usize {
        self.belief.argmax()
    }

    /// Resets the belief to "everything healthy" (after an out-of-band
    /// full fleet audit).
    pub fn reset(&mut self) {
        self.belief = Belief::point(self.pomdp.states(), 0);
    }

    /// Restores a previously captured belief (checkpoint resume): the
    /// probabilities must cover exactly the detector's buckets, be finite,
    /// non-negative, and sum to ~1.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the probabilities do not form a
    /// distribution over the detector's state space.
    pub fn restore_belief(&mut self, probabilities: &[f64]) -> Result<(), ValidateError> {
        if probabilities.len() != self.pomdp.states() {
            return Err(ValidateError::new(format!(
                "belief has {} entries for {} buckets",
                probabilities.len(),
                self.pomdp.states()
            )));
        }
        if probabilities.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(ValidateError::new(
                "belief probabilities must be finite and non-negative",
            ));
        }
        let total: f64 = probabilities.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(ValidateError::new(format!(
                "belief probabilities sum to {total}, expected 1"
            )));
        }
        self.belief = Belief::from_weights(probabilities.to_vec());
        Ok(())
    }

    /// Processes one slot: feeds the single-event `observation` (a bucket
    /// index) through the Bayes update, then asks the policy for the next
    /// action. When the policy fixes, the belief collapses to bucket 0
    /// through the reset transition on the following update.
    ///
    /// The action returned is the one the policy wants to execute *now*,
    /// based on the post-observation belief.
    ///
    /// # Panics
    ///
    /// Panics if `observation >= buckets`.
    pub fn observe_and_act(&mut self, observation: usize) -> DetectorAction {
        assert!(
            observation < self.pomdp.observations(),
            "observation {observation} out of {} buckets",
            self.pomdp.observations()
        );
        // The previous step's action is encoded in the belief already; the
        // per-slot cycle is: drift/reset happened, we now observe, update,
        // then act. Monitoring is the default dynamics for the update.
        let action = DetectorAction::Monitor.index();
        self.belief = self
            .belief
            .update(&self.pomdp, action, observation)
            .unwrap_or_else(|| self.belief.predict(&self.pomdp, action));
        let chosen = DetectorAction::try_from(self.policy.action(&self.belief))
            .expect("POMDP policies only emit the two detector actions");
        if chosen == DetectorAction::Fix {
            // Executing the fix resets the world; mirror it in the belief.
            self.belief = self
                .belief
                .predict(&self.pomdp, DetectorAction::Fix.index());
        }
        chosen
    }

    /// The policy's value estimate for the current belief (diagnostic).
    pub fn current_value(&self) -> f64 {
        self.policy.value(&self.belief)
    }
}

/// Drift-up random walk: stay with `1 − p`, climb one bucket with `p`
/// (absorbing at the top).
fn drift_transition(buckets: usize, p: f64) -> Vec<Vec<f64>> {
    (0..buckets)
        .map(|s| {
            let mut row = vec![0.0; buckets];
            if s + 1 < buckets {
                row[s] = 1.0 - p;
                row[s + 1] = p;
            } else {
                row[s] = 1.0;
            }
            row
        })
        .collect()
}

/// Fixing resets every bucket to zero.
fn reset_transition(buckets: usize) -> Vec<Vec<f64>> {
    (0..buckets)
        .map(|_| {
            let mut row = vec![0.0; buckets];
            row[0] = 1.0;
            row
        })
        .collect()
}

/// Confusion matrix with `accuracy` on the diagonal and the remainder split
/// between the adjacent buckets (or piled on the single neighbor at the
/// edges). Used directly by [`LongTermDetector::new`] and as the shrinkage
/// prior when an empirical matrix is estimated from few samples.
pub fn analytic_observation_matrix(buckets: usize, accuracy: f64) -> Vec<Vec<f64>> {
    (0..buckets)
        .map(|s| {
            let mut row = vec![0.0; buckets];
            row[s] = accuracy;
            let spill = 1.0 - accuracy;
            match (s > 0, s + 1 < buckets) {
                (true, true) => {
                    row[s - 1] += spill / 2.0;
                    row[s + 1] += spill / 2.0;
                }
                (true, false) => row[s - 1] += spill,
                (false, true) => row[s + 1] += spill,
                (false, false) => row[s] = 1.0,
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(LongTermConfig::default().validate().is_ok());
        assert!(LongTermConfig {
            buckets: 1,
            ..LongTermConfig::default()
        }
        .validate()
        .is_err());
        assert!(LongTermConfig {
            intrusion_drift: 1.5,
            ..LongTermConfig::default()
        }
        .validate()
        .is_err());
        assert!(LongTermConfig {
            labor_cost: -1.0,
            ..LongTermConfig::default()
        }
        .validate()
        .is_err());
        assert!(LongTermConfig {
            discount: 1.0,
            ..LongTermConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn analytic_matrix_rows_are_distributions() {
        for buckets in [2, 5, 11] {
            for accuracy in [0.5, 0.9, 1.0] {
                let z = analytic_observation_matrix(buckets, accuracy);
                for row in &z {
                    let total: f64 = row.iter().sum();
                    assert!(
                        (total - 1.0).abs() < 1e-9,
                        "buckets {buckets} acc {accuracy}"
                    );
                }
            }
        }
    }

    #[test]
    fn repeated_high_observations_trigger_fix() {
        let mut detector = LongTermDetector::new(LongTermConfig::default()).unwrap();
        let top = detector.config().buckets - 1;
        let mut fixed = false;
        for _ in 0..10 {
            if detector.observe_and_act(top) == DetectorAction::Fix {
                fixed = true;
                break;
            }
        }
        assert!(
            fixed,
            "detector never fixed under max-severity observations"
        );
        // After the fix the belief should be concentrated low again.
        assert_eq!(detector.estimated_bucket(), 0);
    }

    #[test]
    fn healthy_observations_keep_monitoring() {
        let mut detector = LongTermDetector::new(LongTermConfig::default()).unwrap();
        for _ in 0..20 {
            assert_eq!(detector.observe_and_act(0), DetectorAction::Monitor);
        }
        assert_eq!(detector.estimated_bucket(), 0);
    }

    #[test]
    fn noisier_observations_delay_fixes() {
        let sharp_config = LongTermConfig {
            observation_accuracy: 0.95,
            ..LongTermConfig::default()
        };
        let blurry_config = LongTermConfig {
            observation_accuracy: 0.4,
            ..LongTermConfig::default()
        };
        let steps_to_fix = |config: LongTermConfig| {
            let mut detector = LongTermDetector::new(config).unwrap();
            let top = detector.config().buckets - 1;
            for step in 0..50 {
                if detector.observe_and_act(top) == DetectorAction::Fix {
                    return step;
                }
            }
            50
        };
        assert!(steps_to_fix(sharp_config) <= steps_to_fix(blurry_config));
    }

    #[test]
    fn pbvi_solver_also_works() {
        let config = LongTermConfig {
            solver: PomdpSolverKind::Pbvi(PbviConfig {
                iterations: 15,
                belief_points: 24,
                ..PbviConfig::default()
            }),
            ..LongTermConfig::default()
        };
        let mut detector = LongTermDetector::new(config).unwrap();
        let top = detector.config().buckets - 1;
        let mut fixed = false;
        for _ in 0..10 {
            if detector.observe_and_act(top) == DetectorAction::Fix {
                fixed = true;
                break;
            }
        }
        assert!(fixed);
        assert!(detector.current_value().is_finite());
    }

    #[test]
    fn trained_observation_matrix_accepted() {
        let k = LongTermConfig::default().buckets;
        let z = analytic_observation_matrix(k, 0.7);
        let detector =
            LongTermDetector::with_observation_matrix(LongTermConfig::default(), z).unwrap();
        assert_eq!(detector.belief().len(), k);
    }

    #[test]
    fn reset_restores_clean_belief() {
        let mut detector = LongTermDetector::new(LongTermConfig::default()).unwrap();
        let top = detector.config().buckets - 1;
        detector.observe_and_act(top);
        detector.reset();
        assert_eq!(detector.estimated_bucket(), 0);
        assert!((detector.belief().prob(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn action_index_round_trip() {
        assert_eq!(DetectorAction::try_from(0), Ok(DetectorAction::Monitor));
        assert_eq!(DetectorAction::try_from(1), Ok(DetectorAction::Fix));
        assert_eq!(DetectorAction::Fix.index(), 1);
    }

    #[test]
    fn bad_action_index_is_a_typed_error() {
        let err = DetectorAction::try_from(2).unwrap_err();
        assert_eq!(err, InvalidActionIndex(2));
        assert!(err.to_string().contains("two actions"), "{err}");
    }

    #[test]
    #[should_panic(expected = "two actions")]
    fn deprecated_from_index_shim_still_panics() {
        #[allow(deprecated)]
        let _ = DetectorAction::from_index(2);
    }

    #[test]
    fn belief_restores_from_checkpoint_probabilities() {
        let mut detector = LongTermDetector::new(LongTermConfig::default()).unwrap();
        let buckets = detector.config().buckets;
        let mut probabilities = vec![0.0; buckets];
        probabilities[1] = 0.75;
        probabilities[0] = 0.25;
        detector.restore_belief(&probabilities).unwrap();
        assert_eq!(detector.estimated_bucket(), 1);
        assert!((detector.belief().prob(1) - 0.75).abs() < 1e-12);

        // Wrong length, bad values, and a non-distribution all error.
        assert!(detector.restore_belief(&[1.0]).is_err());
        let mut bad = vec![0.0; buckets];
        bad[0] = f64::NAN;
        assert!(detector.restore_belief(&bad).is_err());
        let mut unnormalized = vec![0.0; buckets];
        unnormalized[0] = 0.4;
        assert!(detector.restore_belief(&unnormalized).is_err());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_observation_panics() {
        let mut detector = LongTermDetector::new(LongTermConfig::default()).unwrap();
        let _ = detector.observe_and_act(99);
    }
}
