//! The net-metering-aware smart home pricing cyberattack detection framework
//! — the primary contribution of *"Impact Assessment of Net Metering on
//! Smart Home Cyberattack Detection"* (DAC 2015).
//!
//! The framework composes four pieces:
//!
//! 1. [`PricePredictor`] — SVR prediction of the next day's guideline price,
//!    either *naive* (price history only, the state of the art of \[8\]) or
//!    *net-metering aware* (the paper's `G(p, V, D)` features);
//! 2. [`LoadPredictor`] — simulation of the community's scheduling response
//!    to a price signal by solving the scheduling game (§3), either modeling
//!    net metering (PV + battery + sell-back) or ignoring it;
//! 3. [`SingleEventDetector`] — the PAR comparison of §4.1: simulate with
//!    the predicted and the received price, flag when
//!    `P_r − P_p > δ_P`, and map the excess into an *observed hacked-meter
//!    bucket* via a calibration table;
//! 4. [`LongTermDetector`] — the POMDP of §4.2 over hacked-meter buckets,
//!    deciding each slot between continuing to monitor (`a_0`) and checking
//!    & fixing the meters (`a_1`).
//!
//! `nms-sim` wires these into the paper's experiments; see DESIGN.md for
//! the experiment index.
//!
//! # Examples
//!
//! ```
//! use nms_core::{DetectorMode, FrameworkConfig};
//!
//! let aware = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
//! let naive = FrameworkConfig::new(DetectorMode::IgnoreNetMetering, 24);
//! assert!(aware.load.net_metering);
//! assert!(!naive.load.net_metering);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod long_term;
mod metrics;
mod pipeline;
mod predict_load;
mod predict_price;
mod sanitize;
mod single_event;

pub use long_term::{
    analytic_observation_matrix, DetectorAction, InvalidActionIndex, LongTermConfig,
    LongTermDetector, PomdpSolverKind,
};
pub use metrics::{AccuracyTracker, DetectionReport, LaborTracker};
pub use pipeline::{DetectorMode, FrameworkConfig};
pub use predict_load::{LoadPredictor, PredictedResponse};
pub use predict_price::{PredictPriceError, PricePredictor, TrainReport};
pub use sanitize::{
    meter_day_failed, sanitize_series, MeterHealth, MeterQuarantine, MeterState, QuarantineConfig,
    QuarantineEvent, QuarantineTransition, SanitizeConfig, SanitizeReport,
};
pub use single_event::{ParObservationMap, SingleEventDetector, SingleEventOutcome};
