//! SVR-based single-event detection (§4.1): compare the PAR the community
//! would exhibit under the *received* guideline price against the PAR under
//! the *predicted* price, and flag when the excess passes a threshold.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use nms_pricing::PriceSignal;
use nms_smarthome::Community;
use nms_solver::SolverError;
use nms_types::ValidateError;

use crate::LoadPredictor;

/// Result of one single-event detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleEventOutcome {
    /// PAR simulated under the predicted guideline price (`P_p`).
    pub predicted_par: f64,
    /// PAR simulated under the received guideline price (`P_r`).
    pub received_par: f64,
    /// `true` when `P_r − P_p > δ_P`.
    pub attack_detected: bool,
    /// The raw detection statistic `P_r − P_p`.
    pub par_excess: f64,
}

/// The single-event detector of §4.1.
///
/// Both PARs are *simulated* with the detector's own world model (the
/// [`LoadPredictor`]), which is exactly where ignoring net metering hurts:
/// a biased world model inflates the no-attack baseline and masks
/// attack-induced excesses.
#[derive(Debug, Clone, Copy)]
pub struct SingleEventDetector {
    predictor: LoadPredictor,
    threshold: f64,
}

impl SingleEventDetector {
    /// Creates a detector with PAR threshold `δ_P`.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the threshold is negative or
    /// non-finite.
    pub fn new(predictor: LoadPredictor, threshold: f64) -> Result<Self, ValidateError> {
        if !threshold.is_finite() || threshold < 0.0 {
            return Err(ValidateError::new(format!(
                "PAR threshold must be finite and non-negative, got {threshold}"
            )));
        }
        Ok(Self {
            predictor,
            threshold,
        })
    }

    /// The world model in use.
    #[inline]
    pub fn predictor(&self) -> &LoadPredictor {
        &self.predictor
    }

    /// The PAR threshold `δ_P`.
    #[inline]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Runs the §4.1 procedure: simulate scheduling under both prices,
    /// compare PARs.
    ///
    /// Both simulations run from the *same* derived seed (common random
    /// numbers), so identical prices produce identical PARs and the excess
    /// statistic carries no stochastic-solver noise.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError`] when either simulation fails.
    pub fn detect(
        &self,
        community: &Community,
        predicted_price: &PriceSignal,
        received_price: &PriceSignal,
        rng: &mut impl Rng,
    ) -> Result<SingleEventOutcome, SolverError> {
        let seed: u64 = rng.gen();
        let mut rng_predicted = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut rng_received = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let predicted = self
            .predictor
            .predict(community, predicted_price, &mut rng_predicted)?;
        let received = self
            .predictor
            .predict(community, received_price, &mut rng_received)?;
        let par_excess = received.par - predicted.par;
        Ok(SingleEventOutcome {
            predicted_par: predicted.par,
            received_par: received.par,
            attack_detected: par_excess > self.threshold,
            par_excess,
        })
    }
}

/// Maps a PAR excess to an observed hacked-meter *bucket* for the POMDP.
///
/// The map is calibrated from reference points `(par_excess, bucket)`
/// measured by simulating known compromise levels with the detector's own
/// world model; observation is nearest-bucket on the excess axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParObservationMap {
    /// Monotone per-bucket centroids of the PAR excess.
    centroids: Vec<f64>,
}

impl ParObservationMap {
    /// Builds the map from per-bucket centroid excesses (index = bucket).
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when fewer than two buckets are given or
    /// centroids are not strictly increasing.
    pub fn from_centroids(centroids: Vec<f64>) -> Result<Self, ValidateError> {
        if centroids.len() < 2 {
            return Err(ValidateError::new("need at least two buckets"));
        }
        if centroids.iter().any(|c| !c.is_finite()) {
            return Err(ValidateError::new("centroids must be finite"));
        }
        if centroids.windows(2).any(|w| w[1] <= w[0]) {
            return Err(ValidateError::new(
                "centroids must be strictly increasing in the hacked count",
            ));
        }
        Ok(Self { centroids })
    }

    /// Number of buckets.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.centroids.len()
    }

    /// The calibrated centroids.
    #[inline]
    pub fn centroids(&self) -> &[f64] {
        &self.centroids
    }

    /// The observed bucket for a measured PAR excess (nearest centroid).
    pub fn observe(&self, par_excess: f64) -> usize {
        let mut best = 0;
        let mut best_distance = f64::INFINITY;
        for (bucket, &centroid) in self.centroids.iter().enumerate() {
            let distance = (par_excess - centroid).abs();
            if distance < best_distance {
                best_distance = distance;
                best = bucket;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_pricing::NetMeteringTariff;
    use nms_smarthome::{
        clear_sky_profile, Appliance, ApplianceKind, Battery, Customer, PowerLevels, PvPanel,
        TaskSpec,
    };
    use nms_solver::GameConfig;
    use nms_types::{ApplianceId, CustomerId, Horizon, Kw, Kwh};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    fn community(n: usize) -> Community {
        let customers: Vec<Customer> = (0..n)
            .map(|i| {
                Customer::builder(CustomerId::new(i), day())
                    .appliance(Appliance::new(
                        ApplianceId::new(0),
                        ApplianceKind::WaterHeater,
                        PowerLevels::stepped(Kw::new(2.0), 2).unwrap(),
                        TaskSpec::new(Kwh::new(3.0), 0, 23).unwrap(),
                    ))
                    .battery(Battery::new(Kwh::new(2.0), Kwh::ZERO).unwrap())
                    .pv(PvPanel::new(Kw::new(2.0), clear_sky_profile(day(), Kw::new(2.0))).unwrap())
                    .build()
                    .unwrap()
            })
            .collect();
        Community::new(day(), customers).unwrap()
    }

    fn detector() -> SingleEventDetector {
        SingleEventDetector::new(
            LoadPredictor::net_metering_aware(NetMeteringTariff::default(), GameConfig::fast()),
            0.1,
        )
        .unwrap()
    }

    #[test]
    fn threshold_validation() {
        let predictor =
            LoadPredictor::net_metering_aware(NetMeteringTariff::default(), GameConfig::fast());
        assert!(SingleEventDetector::new(predictor, -0.1).is_err());
        assert!(SingleEventDetector::new(predictor, f64::NAN).is_err());
        assert!(SingleEventDetector::new(predictor, 0.0).is_ok());
    }

    #[test]
    fn no_attack_yields_no_detection() {
        let community = community(3);
        let price = PriceSignal::time_of_use(day(), 0.05, 0.2).unwrap();
        let detector = detector();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let outcome = detector
            .detect(&community, &price, &price, &mut rng)
            .unwrap();
        // Same price on both sides: small (stochastic-solver) excess only.
        assert!(!outcome.attack_detected, "excess {}", outcome.par_excess);
        assert!(outcome.par_excess.abs() < detector.threshold());
    }

    #[test]
    fn zero_price_attack_is_detected() {
        let community = community(3);
        let clean = PriceSignal::time_of_use(day(), 0.05, 0.2).unwrap();
        let mut series = clean.as_series().clone();
        series[16] = 0.0;
        series[17] = 0.0;
        let attacked = PriceSignal::new(series).unwrap();
        let detector = detector();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let outcome = detector
            .detect(&community, &clean, &attacked, &mut rng)
            .unwrap();
        assert!(outcome.attack_detected, "excess {}", outcome.par_excess);
        assert!(outcome.received_par > outcome.predicted_par);
    }

    #[test]
    fn observation_map_buckets_excesses() {
        let map = ParObservationMap::from_centroids(vec![0.0, 0.1, 0.25, 0.5]).unwrap();
        assert_eq!(map.buckets(), 4);
        assert_eq!(map.observe(-0.05), 0);
        assert_eq!(map.observe(0.04), 0);
        assert_eq!(map.observe(0.09), 1);
        assert_eq!(map.observe(0.3), 2);
        assert_eq!(map.observe(10.0), 3);
    }

    #[test]
    fn observation_map_validates() {
        assert!(ParObservationMap::from_centroids(vec![0.0]).is_err());
        assert!(ParObservationMap::from_centroids(vec![0.0, 0.0]).is_err());
        assert!(ParObservationMap::from_centroids(vec![0.1, 0.0]).is_err());
        assert!(ParObservationMap::from_centroids(vec![0.0, f64::NAN]).is_err());
    }

    #[test]
    fn flat_price_attack_statistics_are_symmetricish() {
        // Scaling the whole signal does not change relative shapes much, so
        // the excess should be small (bill attacks are the long-term
        // detector's job; the single event statistic targets PAR shifts).
        let community = community(3);
        let clean = PriceSignal::time_of_use(day(), 0.05, 0.2).unwrap();
        let scaled = clean.map(|p| p * 1.5).unwrap();
        let detector = detector();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let outcome = detector
            .detect(&community, &clean, &scaled, &mut rng)
            .unwrap();
        assert!(outcome.par_excess.abs() < 0.3);
    }
}
