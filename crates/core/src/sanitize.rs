//! Input sanitization for observed telemetry (robustness layer).
//!
//! Faulted meters hand the detector readings that are missing (NaN),
//! garbage (absurd magnitudes), or stale. Rather than letting one bad slot
//! poison the peak-deviation statistic — or crash the pipeline — the
//! sanitizer screens each slot and imputes a replacement:
//!
//! 1. **Reference fill** (the seasonal role, cf. `nms_forecast`'s
//!    `seasonal_mean_forecast`): the detector always holds a predicted
//!    series for the same horizon, which is the best available estimate of
//!    what the corrupted slot *should* have read;
//! 2. **Last-good fill** (the persistence role, cf. `persistence_forecast`)
//!    when the reference slot is itself unusable;
//! 3. **Zero fill** when nothing earlier in the day survived either.
//!
//! The report says how many slots were touched so the caller's
//! [`RunHealth`](nms_types::RunHealth) ledger can expose the degradation.

use serde::{Deserialize, Serialize};

use nms_types::{TimeSeries, ValidateError};

/// Screening thresholds for [`sanitize_series`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SanitizeConfig {
    /// A finite reading is declared garbage when its magnitude exceeds
    /// `outlier_factor × (max |reference| + 1)`.
    pub outlier_factor: f64,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        Self {
            outlier_factor: 10.0,
        }
    }
}

impl SanitizeConfig {
    /// Checks the thresholds are usable.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when `outlier_factor` is not finite and
    /// greater than 1.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if !(self.outlier_factor > 1.0 && self.outlier_factor.is_finite()) {
            return Err(ValidateError::new(format!(
                "outlier factor must be finite and > 1, got {}",
                self.outlier_factor
            )));
        }
        Ok(())
    }
}

/// What [`sanitize_series`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizeReport {
    /// The screened series: every slot finite, corrupt slots imputed.
    pub cleaned: TimeSeries<f64>,
    /// Number of slots that were replaced.
    pub imputed_slots: usize,
    /// `false` when the reference series had no finite slot, so the outlier
    /// screen was anchored on the observed values themselves (weaker: a day
    /// of uniformly absurd readings would pass).
    pub reference_anchored: bool,
}

/// Screens `observed` against `reference` (the prediction for the same
/// horizon), imputing every non-finite or absurd-magnitude slot. The result
/// is always fully finite. When the reference has no finite slot at all the
/// screen anchors on the finite observed magnitudes instead (reported via
/// [`SanitizeReport::reference_anchored`]).
///
/// # Errors
///
/// Returns [`ValidateError`] when the horizons differ or the config is
/// invalid.
pub fn sanitize_series(
    observed: &TimeSeries<f64>,
    reference: &TimeSeries<f64>,
    config: &SanitizeConfig,
) -> Result<SanitizeReport, ValidateError> {
    config.validate()?;
    if observed.horizon() != reference.horizon() {
        return Err(ValidateError::new(format!(
            "observed horizon ({} slots) differs from reference ({} slots)",
            observed.horizon().slots(),
            reference.horizon().slots()
        )));
    }

    // Anchor the outlier screen on the reference magnitude; when the
    // reference is entirely non-finite, fall back to the finite observed
    // magnitudes so legitimate large readings (e.g. grid demand in the
    // hundreds) are not wholesale flagged against a unit scale.
    let finite_max = |series: &TimeSeries<f64>| {
        series
            .iter()
            .filter(|v| v.is_finite())
            .fold(None, |acc: Option<f64>, &v| {
                Some(acc.map_or(v.abs(), |a| a.max(v.abs())))
            })
    };
    let reference_max = finite_max(reference);
    let reference_anchored = reference_max.is_some();
    let scale = reference_max
        .or_else(|| finite_max(observed))
        .unwrap_or(0.0)
        + 1.0;
    let threshold = config.outlier_factor * scale;

    let mut cleaned = observed.clone();
    let mut imputed = 0usize;
    let mut last_good: Option<f64> = None;
    for h in 0..cleaned.horizon().slots() {
        let value = cleaned[h];
        if value.is_finite() && value.abs() <= threshold {
            last_good = Some(value);
            continue;
        }
        let fill = if reference[h].is_finite() {
            reference[h]
        } else {
            last_good.unwrap_or(0.0)
        };
        cleaned[h] = fill;
        imputed += 1;
    }

    Ok(SanitizeReport {
        cleaned,
        imputed_slots: imputed,
        reference_anchored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_types::Horizon;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    #[test]
    fn clean_series_passes_through_untouched() {
        let observed = TimeSeries::from_fn(day(), |h| h as f64);
        let reference = TimeSeries::filled(day(), 10.0);
        let report = sanitize_series(&observed, &reference, &SanitizeConfig::default()).unwrap();
        assert_eq!(report.imputed_slots, 0);
        assert_eq!(report.cleaned, observed);
    }

    #[test]
    fn nan_and_outlier_slots_take_the_reference_value() {
        let mut observed = TimeSeries::filled(day(), 5.0);
        observed[3] = f64::NAN;
        observed[7] = 1e9; // garbage against a reference scale of ~10
        let reference = TimeSeries::from_fn(day(), |h| h as f64);
        let report = sanitize_series(&observed, &reference, &SanitizeConfig::default()).unwrap();
        assert_eq!(report.imputed_slots, 2);
        assert_eq!(report.cleaned[3], 3.0);
        assert_eq!(report.cleaned[7], 7.0);
        assert_eq!(report.cleaned[0], 5.0);
    }

    #[test]
    fn last_good_then_zero_when_reference_is_unusable() {
        let mut observed = TimeSeries::filled(day(), 2.0);
        observed[0] = f64::INFINITY;
        observed[5] = f64::NAN;
        let mut reference = TimeSeries::filled(day(), 1.0);
        reference[0] = f64::NAN;
        reference[5] = f64::NAN;
        let report = sanitize_series(&observed, &reference, &SanitizeConfig::default()).unwrap();
        assert_eq!(report.imputed_slots, 2);
        // Slot 0 has no earlier good value: zero fill.
        assert_eq!(report.cleaned[0], 0.0);
        // Slot 5 persists the last good reading.
        assert_eq!(report.cleaned[5], 2.0);
        assert!(report.cleaned.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn non_finite_reference_anchors_on_observed_scale() {
        // A fully unusable prediction must not shrink the outlier screen to
        // unit scale and zero out a legitimate high-demand day.
        let mut observed = TimeSeries::filled(day(), 480.0);
        observed[6] = f64::NAN;
        let reference = TimeSeries::filled(day(), f64::NAN);
        let report = sanitize_series(&observed, &reference, &SanitizeConfig::default()).unwrap();
        assert!(!report.reference_anchored);
        assert_eq!(report.imputed_slots, 1);
        assert_eq!(report.cleaned[0], 480.0);
        // The NaN slot persists the last good observed reading.
        assert_eq!(report.cleaned[6], 480.0);
    }

    #[test]
    fn horizon_mismatch_and_bad_config_error() {
        let observed = TimeSeries::filled(day(), 1.0);
        let reference = TimeSeries::filled(Horizon::new(12, 1.0), 1.0);
        assert!(sanitize_series(&observed, &reference, &SanitizeConfig::default()).is_err());
        let bad = SanitizeConfig { outlier_factor: 1.0 };
        assert!(sanitize_series(&observed, &observed, &bad).is_err());
    }
}
