//! Input sanitization for observed telemetry (robustness layer).
//!
//! Faulted meters hand the detector readings that are missing (NaN),
//! garbage (absurd magnitudes), or stale. Rather than letting one bad slot
//! poison the peak-deviation statistic — or crash the pipeline — the
//! sanitizer screens each slot and imputes a replacement:
//!
//! 1. **Reference fill** (the seasonal role, cf. `nms_forecast`'s
//!    `seasonal_mean_forecast`): the detector always holds a predicted
//!    series for the same horizon, which is the best available estimate of
//!    what the corrupted slot *should* have read;
//! 2. **Last-good fill** (the persistence role, cf. `persistence_forecast`)
//!    when the reference slot is itself unusable;
//! 3. **Zero fill** when nothing earlier in the day survived either.
//!
//! The report says how many slots were touched so the caller's
//! [`RunHealth`](nms_types::RunHealth) ledger can expose the degradation.

use serde::{Deserialize, Serialize};

use nms_types::{TimeSeries, ValidateError};

/// Screening thresholds for [`sanitize_series`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SanitizeConfig {
    /// A finite reading is declared garbage when its magnitude exceeds
    /// `outlier_factor × (max |reference| + 1)`.
    pub outlier_factor: f64,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        Self {
            outlier_factor: 10.0,
        }
    }
}

impl SanitizeConfig {
    /// Checks the thresholds are usable.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when `outlier_factor` is not finite and
    /// greater than 1.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if !(self.outlier_factor > 1.0 && self.outlier_factor.is_finite()) {
            return Err(ValidateError::new(format!(
                "outlier factor must be finite and > 1, got {}",
                self.outlier_factor
            )));
        }
        Ok(())
    }
}

/// What [`sanitize_series`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizeReport {
    /// The screened series: every slot finite, corrupt slots imputed.
    pub cleaned: TimeSeries<f64>,
    /// Number of slots that were replaced.
    pub imputed_slots: usize,
    /// `false` when the reference series had no finite slot, so the outlier
    /// screen was anchored on the observed values themselves (weaker: a day
    /// of uniformly absurd readings would pass).
    pub reference_anchored: bool,
}

/// Screens `observed` against `reference` (the prediction for the same
/// horizon), imputing every non-finite or absurd-magnitude slot. The result
/// is always fully finite. When the reference has no finite slot at all the
/// screen anchors on the finite observed magnitudes instead (reported via
/// [`SanitizeReport::reference_anchored`]).
///
/// # Errors
///
/// Returns [`ValidateError`] when the horizons differ or the config is
/// invalid.
pub fn sanitize_series(
    observed: &TimeSeries<f64>,
    reference: &TimeSeries<f64>,
    config: &SanitizeConfig,
) -> Result<SanitizeReport, ValidateError> {
    config.validate()?;
    if observed.horizon() != reference.horizon() {
        return Err(ValidateError::new(format!(
            "observed horizon ({} slots) differs from reference ({} slots)",
            observed.horizon().slots(),
            reference.horizon().slots()
        )));
    }

    // Anchor the outlier screen on the reference magnitude; when the
    // reference is entirely non-finite, fall back to the finite observed
    // magnitudes so legitimate large readings (e.g. grid demand in the
    // hundreds) are not wholesale flagged against a unit scale.
    let finite_max = |series: &TimeSeries<f64>| {
        series
            .iter()
            .filter(|v| v.is_finite())
            .fold(None, |acc: Option<f64>, &v| {
                Some(acc.map_or(v.abs(), |a| a.max(v.abs())))
            })
    };
    let reference_max = finite_max(reference);
    let reference_anchored = reference_max.is_some();
    let scale = reference_max
        .or_else(|| finite_max(observed))
        .unwrap_or(0.0)
        + 1.0;
    let threshold = config.outlier_factor * scale;

    let mut cleaned = observed.clone();
    let mut imputed = 0usize;
    let mut last_good: Option<f64> = None;
    for h in 0..cleaned.horizon().slots() {
        let value = cleaned[h];
        if value.is_finite() && value.abs() <= threshold {
            last_good = Some(value);
            continue;
        }
        let fill = if reference[h].is_finite() {
            reference[h]
        } else {
            last_good.unwrap_or(0.0)
        };
        cleaned[h] = fill;
        imputed += 1;
    }

    Ok(SanitizeReport {
        cleaned,
        imputed_slots: imputed,
        reference_anchored,
    })
}

// ---------------------------------------------------------------------------
// Per-meter quarantine circuit breaker
// ---------------------------------------------------------------------------

/// Circuit-breaker state of one meter (see DESIGN.md §8.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeterState {
    /// Healthy: readings feed the aggregate normally.
    Closed,
    /// Quarantined: persistently failing sanitization; excluded from the
    /// aggregate and surfaced to the detector as a suspect.
    Open,
    /// Probation: readings feed the aggregate again, but one more failed
    /// day re-trips the breaker.
    HalfOpen,
}

/// A state transition of one meter's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineTransition {
    /// Closed → Open after `trip_after` consecutive failed days.
    Tripped,
    /// Open → HalfOpen after `probation_after` quarantined days.
    Probation,
    /// HalfOpen → Open: the probe day failed too.
    Retripped,
    /// HalfOpen → Closed after `close_after` consecutive good days.
    Recovered,
}

/// One journaled breaker transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEvent {
    /// Absolute simulation day of the transition.
    pub day: usize,
    /// Zero-based meter index within the community.
    pub meter: usize,
    /// What happened.
    pub transition: QuarantineTransition,
}

/// Thresholds for the per-meter quarantine breaker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuarantineConfig {
    /// Consecutive failed-sanitization days that trip a closed breaker.
    pub trip_after: usize,
    /// Quarantined days before the breaker half-opens for a probe.
    pub probation_after: usize,
    /// Consecutive good days in half-open that close the breaker.
    pub close_after: usize,
    /// A meter's day counts as failed when at least this fraction of its
    /// slots are bad (non-finite or garbage-magnitude), in (0, 1].
    pub bad_slot_fraction: f64,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        Self {
            trip_after: 3,
            probation_after: 2,
            close_after: 2,
            bad_slot_fraction: 0.5,
        }
    }
}

impl QuarantineConfig {
    /// Checks the thresholds are usable.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] for zero day thresholds or a slot fraction
    /// outside (0, 1].
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.trip_after == 0 || self.probation_after == 0 || self.close_after == 0 {
            return Err(ValidateError::new(
                "quarantine day thresholds must be at least 1",
            ));
        }
        if !(self.bad_slot_fraction > 0.0 && self.bad_slot_fraction <= 1.0) {
            return Err(ValidateError::new(format!(
                "bad slot fraction must be in (0, 1], got {}",
                self.bad_slot_fraction
            )));
        }
        Ok(())
    }
}

/// Judges whether one meter's day of raw readings failed sanitization: a
/// slot is bad when non-finite or when its magnitude exceeds the
/// [`SanitizeConfig`] outlier screen anchored on `scale` (the expected
/// per-meter reading magnitude); the day fails when the bad fraction
/// reaches [`QuarantineConfig::bad_slot_fraction`]. An empty day fails.
pub fn meter_day_failed(
    readings: &[f64],
    scale: f64,
    sanitize: &SanitizeConfig,
    quarantine: &QuarantineConfig,
) -> bool {
    if readings.is_empty() {
        return true;
    }
    let threshold = sanitize.outlier_factor * (scale.abs() + 1.0);
    let bad = readings
        .iter()
        .filter(|v| !v.is_finite() || v.abs() > threshold)
        .count();
    bad as f64 >= quarantine.bad_slot_fraction * readings.len() as f64 && bad > 0
}

/// One meter's breaker: current state plus the streak counters that drive
/// transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeterHealth {
    state: MeterState,
    /// Consecutive failed days while closed.
    consecutive_bad: usize,
    /// Days spent open since the (re)trip.
    days_open: usize,
    /// Consecutive good days while half-open.
    consecutive_good: usize,
}

impl MeterHealth {
    fn new() -> Self {
        Self {
            state: MeterState::Closed,
            consecutive_bad: 0,
            days_open: 0,
            consecutive_good: 0,
        }
    }

    /// The breaker's current state.
    #[inline]
    pub fn state(&self) -> MeterState {
        self.state
    }
}

/// Tracks every meter's breaker across days (tentpole 3 of the supervision
/// layer): persistent per-meter failures — the AMI literature's compromised
/// or dead meter, as opposed to PR 1's transiently corrupted reading — are
/// quarantined out of the aggregate instead of being re-imputed forever.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeterQuarantine {
    config: QuarantineConfig,
    meters: Vec<MeterHealth>,
}

impl MeterQuarantine {
    /// A tracker for `fleet` meters, all breakers closed.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the config is invalid.
    pub fn new(fleet: usize, config: QuarantineConfig) -> Result<Self, ValidateError> {
        config.validate()?;
        Ok(Self {
            config,
            meters: vec![MeterHealth::new(); fleet],
        })
    }

    /// The bound configuration.
    #[inline]
    pub fn config(&self) -> &QuarantineConfig {
        &self.config
    }

    /// Per-meter breaker states, indexed by meter.
    #[inline]
    pub fn meters(&self) -> &[MeterHealth] {
        &self.meters
    }

    /// `true` when `meter`'s readings must be excluded from the aggregate
    /// (breaker open; half-open probes are included again).
    #[inline]
    pub fn is_excluded(&self, meter: usize) -> bool {
        self.meters
            .get(meter)
            .is_some_and(|m| m.state == MeterState::Open)
    }

    /// Number of quarantined (open) meters — the suspect count surfaced to
    /// the POMDP observation.
    pub fn open_count(&self) -> usize {
        self.meters
            .iter()
            .filter(|m| m.state == MeterState::Open)
            .count()
    }

    /// Advances every breaker by one day. `failed[m]` says whether meter
    /// `m`'s day failed sanitization (see [`meter_day_failed`]); `day` is
    /// the absolute day stamped on emitted events. Returns the transitions,
    /// in meter order.
    ///
    /// # Panics
    ///
    /// Panics when `failed` does not cover the fleet.
    pub fn observe_day(&mut self, day: usize, failed: &[bool]) -> Vec<QuarantineEvent> {
        assert_eq!(
            failed.len(),
            self.meters.len(),
            "per-meter day verdicts must cover the fleet"
        );
        let mut events = Vec::new();
        for (meter, (health, &bad)) in self.meters.iter_mut().zip(failed).enumerate() {
            let transition = match health.state {
                MeterState::Closed => {
                    if bad {
                        health.consecutive_bad += 1;
                        if health.consecutive_bad >= self.config.trip_after {
                            health.state = MeterState::Open;
                            health.days_open = 0;
                            Some(QuarantineTransition::Tripped)
                        } else {
                            None
                        }
                    } else {
                        health.consecutive_bad = 0;
                        None
                    }
                }
                MeterState::Open => {
                    health.days_open += 1;
                    if health.days_open >= self.config.probation_after {
                        health.state = MeterState::HalfOpen;
                        health.consecutive_good = 0;
                        Some(QuarantineTransition::Probation)
                    } else {
                        None
                    }
                }
                MeterState::HalfOpen => {
                    if bad {
                        health.state = MeterState::Open;
                        health.days_open = 0;
                        Some(QuarantineTransition::Retripped)
                    } else {
                        health.consecutive_good += 1;
                        if health.consecutive_good >= self.config.close_after {
                            health.state = MeterState::Closed;
                            health.consecutive_bad = 0;
                            Some(QuarantineTransition::Recovered)
                        } else {
                            None
                        }
                    }
                }
            };
            if let Some(transition) = transition {
                events.push(QuarantineEvent {
                    day,
                    meter,
                    transition,
                });
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_types::Horizon;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    #[test]
    fn clean_series_passes_through_untouched() {
        let observed = TimeSeries::from_fn(day(), |h| h as f64);
        let reference = TimeSeries::filled(day(), 10.0);
        let report = sanitize_series(&observed, &reference, &SanitizeConfig::default()).unwrap();
        assert_eq!(report.imputed_slots, 0);
        assert_eq!(report.cleaned, observed);
    }

    #[test]
    fn nan_and_outlier_slots_take_the_reference_value() {
        let mut observed = TimeSeries::filled(day(), 5.0);
        observed[3] = f64::NAN;
        observed[7] = 1e9; // garbage against a reference scale of ~10
        let reference = TimeSeries::from_fn(day(), |h| h as f64);
        let report = sanitize_series(&observed, &reference, &SanitizeConfig::default()).unwrap();
        assert_eq!(report.imputed_slots, 2);
        assert_eq!(report.cleaned[3], 3.0);
        assert_eq!(report.cleaned[7], 7.0);
        assert_eq!(report.cleaned[0], 5.0);
    }

    #[test]
    fn last_good_then_zero_when_reference_is_unusable() {
        let mut observed = TimeSeries::filled(day(), 2.0);
        observed[0] = f64::INFINITY;
        observed[5] = f64::NAN;
        let mut reference = TimeSeries::filled(day(), 1.0);
        reference[0] = f64::NAN;
        reference[5] = f64::NAN;
        let report = sanitize_series(&observed, &reference, &SanitizeConfig::default()).unwrap();
        assert_eq!(report.imputed_slots, 2);
        // Slot 0 has no earlier good value: zero fill.
        assert_eq!(report.cleaned[0], 0.0);
        // Slot 5 persists the last good reading.
        assert_eq!(report.cleaned[5], 2.0);
        assert!(report.cleaned.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn non_finite_reference_anchors_on_observed_scale() {
        // A fully unusable prediction must not shrink the outlier screen to
        // unit scale and zero out a legitimate high-demand day.
        let mut observed = TimeSeries::filled(day(), 480.0);
        observed[6] = f64::NAN;
        let reference = TimeSeries::filled(day(), f64::NAN);
        let report = sanitize_series(&observed, &reference, &SanitizeConfig::default()).unwrap();
        assert!(!report.reference_anchored);
        assert_eq!(report.imputed_slots, 1);
        assert_eq!(report.cleaned[0], 480.0);
        // The NaN slot persists the last good observed reading.
        assert_eq!(report.cleaned[6], 480.0);
    }

    #[test]
    fn breaker_trips_probes_and_recovers() {
        let config = QuarantineConfig {
            trip_after: 2,
            probation_after: 1,
            close_after: 2,
            bad_slot_fraction: 0.5,
        };
        let mut tracker = MeterQuarantine::new(2, config).unwrap();

        // Day 0: meter 1 bad once — no trip yet.
        assert!(tracker.observe_day(0, &[false, true]).is_empty());
        assert_eq!(tracker.open_count(), 0);

        // Day 1: second consecutive bad day trips meter 1.
        let events = tracker.observe_day(1, &[false, true]);
        assert_eq!(
            events,
            vec![QuarantineEvent {
                day: 1,
                meter: 1,
                transition: QuarantineTransition::Tripped,
            }]
        );
        assert!(tracker.is_excluded(1));
        assert!(!tracker.is_excluded(0));
        assert_eq!(tracker.open_count(), 1);

        // Day 2: probation_after = 1 day open → half-open probe.
        let events = tracker.observe_day(2, &[false, true]);
        assert_eq!(events[0].transition, QuarantineTransition::Probation);
        assert!(!tracker.is_excluded(1), "half-open probes are included");

        // Day 3: the probe fails → re-trip.
        let events = tracker.observe_day(3, &[false, true]);
        assert_eq!(events[0].transition, QuarantineTransition::Retripped);
        assert!(tracker.is_excluded(1));

        // Day 4: probation again; days 5–6 good close the breaker.
        let events = tracker.observe_day(4, &[false, false]);
        assert_eq!(events[0].transition, QuarantineTransition::Probation);
        assert!(tracker.observe_day(5, &[false, false]).is_empty());
        let events = tracker.observe_day(6, &[false, false]);
        assert_eq!(
            events,
            vec![QuarantineEvent {
                day: 6,
                meter: 1,
                transition: QuarantineTransition::Recovered,
            }]
        );
        assert_eq!(tracker.open_count(), 0);
        assert_eq!(tracker.meters()[1].state(), MeterState::Closed);

        // A good day resets the closed streak: bad, good, bad never trips.
        let mut tracker = MeterQuarantine::new(1, config).unwrap();
        tracker.observe_day(0, &[true]);
        tracker.observe_day(1, &[false]);
        assert!(tracker.observe_day(2, &[true]).is_empty());
        assert_eq!(tracker.open_count(), 0);
    }

    #[test]
    fn quarantine_config_validation() {
        assert!(QuarantineConfig::default().validate().is_ok());
        for bad in [
            QuarantineConfig {
                trip_after: 0,
                ..QuarantineConfig::default()
            },
            QuarantineConfig {
                probation_after: 0,
                ..QuarantineConfig::default()
            },
            QuarantineConfig {
                close_after: 0,
                ..QuarantineConfig::default()
            },
            QuarantineConfig {
                bad_slot_fraction: 0.0,
                ..QuarantineConfig::default()
            },
            QuarantineConfig {
                bad_slot_fraction: 1.5,
                ..QuarantineConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be invalid");
            assert!(MeterQuarantine::new(3, bad).is_err());
        }
    }

    #[test]
    fn meter_day_failure_judgement() {
        let sanitize = SanitizeConfig::default();
        let quarantine = QuarantineConfig::default(); // fails at ≥ 50% bad
        // All readings present and plausible: good day.
        assert!(!meter_day_failed(&[1.0; 24], 1.0, &sanitize, &quarantine));
        // Completely unreported: failed day.
        assert!(meter_day_failed(&[f64::NAN; 24], 1.0, &sanitize, &quarantine));
        assert!(meter_day_failed(&[], 1.0, &sanitize, &quarantine));
        // Garbage magnitudes against a unit scale: failed day.
        assert!(meter_day_failed(&[1e9; 24], 1.0, &sanitize, &quarantine));
        // A quarter of slots bad stays below the 50% bar.
        let mut readings = [1.0; 24];
        for slot in readings.iter_mut().take(6) {
            *slot = f64::NAN;
        }
        assert!(!meter_day_failed(&readings, 1.0, &sanitize, &quarantine));
        // Half bad crosses it.
        for slot in readings.iter_mut().take(12) {
            *slot = f64::NAN;
        }
        assert!(meter_day_failed(&readings, 1.0, &sanitize, &quarantine));
    }

    #[test]
    fn quarantine_state_survives_serde() {
        let mut tracker = MeterQuarantine::new(3, QuarantineConfig::default()).unwrap();
        tracker.observe_day(0, &[true, false, true]);
        tracker.observe_day(1, &[true, false, true]);
        tracker.observe_day(2, &[true, false, false]);
        let json = serde_json::to_string(&tracker).unwrap();
        let restored: MeterQuarantine = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, tracker);
    }

    #[test]
    fn horizon_mismatch_and_bad_config_error() {
        let observed = TimeSeries::filled(day(), 1.0);
        let reference = TimeSeries::filled(Horizon::new(12, 1.0), 1.0);
        assert!(sanitize_series(&observed, &reference, &SanitizeConfig::default()).is_err());
        let bad = SanitizeConfig { outlier_factor: 1.0 };
        assert!(sanitize_series(&observed, &observed, &bad).is_err());
    }
}
