//! Detection-quality metrics: observation accuracy (Fig 6) and labor cost
//! (Table 1).

use serde::{Deserialize, Serialize};

/// Tracks how often the single-event observation matched the true hacked
/// bucket — the paper's *observation accuracy* (95.14% with net metering
/// modeled vs 65.95% without).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccuracyTracker {
    matches: usize,
    total: usize,
    per_slot: Vec<bool>,
}

impl AccuracyTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one slot's (true, observed) bucket pair.
    pub fn record(&mut self, true_bucket: usize, observed_bucket: usize) {
        let hit = true_bucket == observed_bucket;
        self.matches += usize::from(hit);
        self.total += 1;
        self.per_slot.push(hit);
    }

    /// Number of recorded slots.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Observation accuracy in `[0, 1]`; `None` before any record.
    pub fn accuracy(&self) -> Option<f64> {
        (self.total > 0).then(|| self.matches as f64 / self.total as f64)
    }

    /// Per-slot hit/miss trace (for Fig 6-style plots).
    #[inline]
    pub fn per_slot(&self) -> &[bool] {
        &self.per_slot
    }

    /// Running accuracy after each slot (the paper's Fig 6 series).
    pub fn running_accuracy(&self) -> Vec<f64> {
        let mut hits = 0usize;
        self.per_slot
            .iter()
            .enumerate()
            .map(|(i, &hit)| {
                hits += usize::from(hit);
                hits as f64 / (i + 1) as f64
            })
            .collect()
    }
}

/// Tracks the labor spent on check-and-fix actions (Table 1's normalized
/// labor cost).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LaborTracker {
    fixes: usize,
    meters_repaired: usize,
    cost_per_fix: f64,
    cost_per_meter: f64,
}

impl LaborTracker {
    /// A tracker with a fixed dispatch cost per fix action plus a per-meter
    /// repair cost.
    pub fn new(cost_per_fix: f64, cost_per_meter: f64) -> Self {
        Self {
            fixes: 0,
            meters_repaired: 0,
            cost_per_fix,
            cost_per_meter,
        }
    }

    /// Records one fix action that repaired `meters` meters.
    pub fn record_fix(&mut self, meters: usize) {
        self.fixes += 1;
        self.meters_repaired += meters;
    }

    /// Number of fix actions taken.
    #[inline]
    pub fn fixes(&self) -> usize {
        self.fixes
    }

    /// Total meters repaired.
    #[inline]
    pub fn meters_repaired(&self) -> usize {
        self.meters_repaired
    }

    /// Total labor cost.
    pub fn total_cost(&self) -> f64 {
        self.fixes as f64 * self.cost_per_fix + self.meters_repaired as f64 * self.cost_per_meter
    }

    /// This tracker's cost normalized by a baseline tracker's (Table 1's
    /// "Normalized Labor Cost" row); `None` when the baseline cost is zero.
    pub fn normalized_against(&self, baseline: &LaborTracker) -> Option<f64> {
        let base = baseline.total_cost();
        (base > 0.0).then(|| self.total_cost() / base)
    }
}

/// A summary row comparing detector configurations (Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Configuration label (e.g. "Detection Considering Net Metering").
    pub label: String,
    /// PAR of the community grid demand over the evaluation window.
    pub par: f64,
    /// Observation accuracy in `[0, 1]`, when tracked.
    pub observation_accuracy: Option<f64>,
    /// Normalized labor cost against the no-net-metering baseline, when
    /// meaningful.
    pub normalized_labor_cost: Option<f64>,
}

impl std::fmt::Display for DetectionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: PAR {:.4}", self.label, self.par)?;
        if let Some(acc) = self.observation_accuracy {
            write!(f, ", accuracy {:.2}%", acc * 100.0)?;
        }
        if let Some(labor) = self.normalized_labor_cost {
            write!(f, ", labor {labor:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_tracks_matches() {
        let mut tracker = AccuracyTracker::new();
        assert!(tracker.accuracy().is_none());
        tracker.record(0, 0);
        tracker.record(1, 1);
        tracker.record(2, 1);
        tracker.record(3, 3);
        assert_eq!(tracker.total(), 4);
        assert!((tracker.accuracy().unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(tracker.per_slot(), &[true, true, false, true]);
    }

    #[test]
    fn running_accuracy_converges_to_final() {
        let mut tracker = AccuracyTracker::new();
        for i in 0..10 {
            tracker.record(i % 3, 0);
        }
        let running = tracker.running_accuracy();
        assert_eq!(running.len(), 10);
        assert!((running[9] - tracker.accuracy().unwrap()).abs() < 1e-12);
        assert_eq!(running[0], 1.0); // first record was a hit (0 == 0)
    }

    #[test]
    fn labor_cost_accumulates() {
        let mut labor = LaborTracker::new(10.0, 1.0);
        labor.record_fix(5);
        labor.record_fix(0);
        assert_eq!(labor.fixes(), 2);
        assert_eq!(labor.meters_repaired(), 5);
        assert!((labor.total_cost() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_against_baseline() {
        let mut baseline = LaborTracker::new(10.0, 0.0);
        baseline.record_fix(3);
        let mut ours = LaborTracker::new(10.0, 0.0);
        ours.record_fix(3);
        ours.record_fix(1);
        assert!((ours.normalized_against(&baseline).unwrap() - 2.0).abs() < 1e-12);
        let empty = LaborTracker::new(10.0, 0.0);
        assert!(ours.normalized_against(&empty).is_none());
    }

    #[test]
    fn report_display() {
        let report = DetectionReport {
            label: "Detection Considering Net Metering".into(),
            par: 1.4112,
            observation_accuracy: Some(0.9514),
            normalized_labor_cost: Some(1.0067),
        };
        let text = report.to_string();
        assert!(text.contains("1.4112"));
        assert!(text.contains("95.14%"));
        assert!(text.contains("1.0067"));
    }
}
