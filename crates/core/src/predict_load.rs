//! Net-metering-aware energy-load prediction (§3): simulate the community's
//! scheduling response to a guideline price by solving the game.

use nms_obs::{NoopRecorder, Recorder};
use rand::Rng;
use serde::{Deserialize, Serialize};

use nms_pricing::{CostModel, NetMeteringTariff, PriceSignal};
use nms_smarthome::{Community, CommunitySchedule, Customer, LoadProfile};
use nms_solver::{CacheStats, GameConfig, GameEngine, PersistentCache, PriceAssignment, SolverError};
use nms_types::{MeterId, TimeSeries};

/// The community's predicted response to a price signal.
#[derive(Debug, Clone)]
pub struct PredictedResponse {
    /// The full game solution.
    pub schedule: CommunitySchedule,
    /// Predicted net grid demand (`Σ_n y_n^h`, clamped at zero).
    pub grid_demand: TimeSeries<f64>,
    /// PAR of the predicted grid demand — the detection statistic.
    pub par: f64,
    /// Whether the game converged within its round budget.
    pub converged: bool,
    /// Best-response rounds the game executed (`0` for responses that did
    /// not run the full game, e.g. unilateral deviations).
    pub rounds: usize,
    /// Solver memo-cache tallies from the game (all-zero when the cache is
    /// disabled or no game ran).
    pub cache: CacheStats,
}

impl PredictedResponse {
    /// The predicted community consumption profile `L_h`.
    pub fn load(&self) -> &LoadProfile {
        self.schedule.load()
    }
}

/// Predicts the community's energy load under a guideline price by solving
/// the Net Metering Aware Energy Consumption Scheduling Game (Algorithm 1).
///
/// With `net_metering = false` the predictor reproduces the prior art's
/// blind spot: customers are modeled as pure consumers (their PV panels and
/// batteries are ignored), so the predicted demand misses the midday dip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPredictor {
    /// The net-metering tariff used in the game's cost model.
    pub tariff: NetMeteringTariff,
    /// Game-solver settings.
    pub game: GameConfig,
    /// Model net metering (PV + battery + sell-back) or ignore it.
    pub net_metering: bool,
}

impl LoadPredictor {
    /// The paper's predictor: net metering modeled.
    pub fn net_metering_aware(tariff: NetMeteringTariff, game: GameConfig) -> Self {
        Self {
            tariff,
            game,
            net_metering: true,
        }
    }

    /// The prior-art predictor that ignores net metering.
    pub fn ignore_net_metering(tariff: NetMeteringTariff, game: GameConfig) -> Self {
        Self {
            tariff,
            game,
            net_metering: false,
        }
    }

    /// Predicts the community response to `prices`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError`] when the game engine fails (invalid config
    /// or an infeasible appliance subproblem).
    pub fn predict(
        &self,
        community: &Community,
        prices: &PriceSignal,
        rng: &mut impl Rng,
    ) -> Result<PredictedResponse, SolverError> {
        self.predict_with_assignment(
            community,
            PriceAssignment::Uniform(prices),
            rng,
            &NoopRecorder,
            None,
        )
    }

    /// [`LoadPredictor::predict`] with solver telemetry routed into `rec`
    /// (see [`GameEngine::solve_recorded`]). Bit-identical results to
    /// [`LoadPredictor::predict`] under the same seed.
    ///
    /// # Errors
    ///
    /// Same as [`LoadPredictor::predict`].
    pub fn predict_recorded(
        &self,
        community: &Community,
        prices: &PriceSignal,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
    ) -> Result<PredictedResponse, SolverError> {
        self.predict_with_assignment(community, PriceAssignment::Uniform(prices), rng, rec, None)
    }

    /// [`LoadPredictor::predict_recorded`] backed by a cross-solve
    /// [`PersistentCache`] (see [`GameEngine::solve_persistent_recorded`]):
    /// pure-DP best responses the cache has seen — in this prediction or an
    /// earlier day's — skip the re-solve. Hits are exact-verified, so the
    /// result is bit-identical to [`LoadPredictor::predict_recorded`] under
    /// the same seed.
    ///
    /// # Errors
    ///
    /// Same as [`LoadPredictor::predict`].
    pub fn predict_cached_recorded(
        &self,
        community: &Community,
        prices: &PriceSignal,
        rng: &mut impl Rng,
        cache: &mut PersistentCache,
        rec: &dyn Recorder,
    ) -> Result<PredictedResponse, SolverError> {
        self.predict_with_assignment(
            community,
            PriceAssignment::Uniform(prices),
            rng,
            rec,
            Some(cache),
        )
    }

    /// Predicts the community response when each customer's meter reports
    /// its own price signal (`signals[i]` for customer `i`) — the
    /// mixed-compromise setting where hacked meters see a manipulated
    /// signal.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError`] when the signal count is wrong or the game
    /// engine fails.
    pub fn predict_per_customer(
        &self,
        community: &Community,
        signals: &[PriceSignal],
        rng: &mut impl Rng,
    ) -> Result<PredictedResponse, SolverError> {
        self.predict_with_assignment(
            community,
            PriceAssignment::PerCustomer(signals),
            rng,
            &NoopRecorder,
            None,
        )
    }

    /// [`LoadPredictor::predict_per_customer`] with solver telemetry routed
    /// into `rec`.
    ///
    /// # Errors
    ///
    /// Same as [`LoadPredictor::predict_per_customer`].
    pub fn predict_per_customer_recorded(
        &self,
        community: &Community,
        signals: &[PriceSignal],
        rng: &mut impl Rng,
        rec: &dyn Recorder,
    ) -> Result<PredictedResponse, SolverError> {
        self.predict_with_assignment(community, PriceAssignment::PerCustomer(signals), rng, rec, None)
    }

    /// The community's realized response when `hacked_meters` deviate
    /// *unilaterally* from a committed day-ahead plan: each hacked home
    /// re-optimizes against the committed aggregate using the manipulated
    /// price, while honest homes keep their committed schedules (day-ahead
    /// coordination has already closed; nobody re-equilibrates intraday).
    ///
    /// `committed` must be a response previously produced by this predictor
    /// for the same community (its schedules are reused as warm starts and
    /// as the honest homes' plans).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError`] if a hacked home's subproblem fails or the
    /// committed response does not match the community.
    pub fn respond_unilaterally(
        &self,
        community: &Community,
        committed: &PredictedResponse,
        manipulated_price: &PriceSignal,
        hacked_meters: &[MeterId],
        rng: &mut impl Rng,
    ) -> Result<PredictedResponse, SolverError> {
        self.respond_unilaterally_recorded(
            community,
            committed,
            manipulated_price,
            hacked_meters,
            rng,
            &NoopRecorder,
        )
    }

    /// [`LoadPredictor::respond_unilaterally`] with solver telemetry routed
    /// into `rec` (the per-meter best responses tally DP/CE work).
    ///
    /// # Errors
    ///
    /// Same as [`LoadPredictor::respond_unilaterally`].
    pub fn respond_unilaterally_recorded(
        &self,
        community: &Community,
        committed: &PredictedResponse,
        manipulated_price: &PriceSignal,
        hacked_meters: &[MeterId],
        rng: &mut impl Rng,
        rec: &dyn Recorder,
    ) -> Result<PredictedResponse, SolverError> {
        let stripped_storage;
        let community_model: &Community = if self.net_metering {
            community
        } else {
            stripped_storage = strip_der(community);
            &stripped_storage
        };
        let committed_schedules = committed.schedule.customer_schedules();
        if committed_schedules.len() != community_model.len() {
            return Err(SolverError::Config(nms_types::ValidateError::new(format!(
                "committed response covers {} customers, community has {}",
                committed_schedules.len(),
                community_model.len()
            ))));
        }
        let mut response_config = self.game.response;
        if !self.net_metering {
            response_config.use_battery = false;
        }
        let cost_model = CostModel::new(manipulated_price, self.tariff);
        let horizon = community_model.horizon();
        let total = TimeSeries::from_fn(horizon, |h| {
            committed_schedules.iter().map(|s| s.trading()[h]).sum()
        });

        let mut schedules = committed_schedules.to_vec();
        for meter in hacked_meters {
            let index = meter.customer().index();
            let customer = community_model.customer(meter.customer()).ok_or_else(|| {
                SolverError::Config(nms_types::ValidateError::new(format!(
                    "{meter} is not in the community"
                )))
            })?;
            let committed_own = &committed_schedules[index];
            let others = total
                .sub(committed_own.trading())
                .expect("aligned horizons");
            schedules[index] = nms_solver::best_response_recorded(
                customer,
                &others,
                cost_model,
                &response_config,
                Some(committed_own),
                rng,
                rec,
            )?;
        }

        let schedule = CommunitySchedule::new(horizon, schedules)?;
        let grid_demand = schedule.grid_demand_clamped();
        let par = grid_demand.par().unwrap_or(1.0);
        Ok(PredictedResponse {
            grid_demand,
            par,
            converged: committed.converged,
            rounds: 0,
            cache: CacheStats::default(),
            schedule,
        })
    }

    fn predict_with_assignment(
        &self,
        community: &Community,
        prices: PriceAssignment<'_>,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
        cache: Option<&mut PersistentCache>,
    ) -> Result<PredictedResponse, SolverError> {
        let stripped_storage;
        let community_model: &Community = if self.net_metering {
            community
        } else {
            stripped_storage = strip_der(community);
            &stripped_storage
        };
        let mut game = self.game;
        if !self.net_metering {
            game.response.use_battery = false;
        }
        let engine = GameEngine::with_price_assignment(community_model, prices, self.tariff, game)
            .map_err(SolverError::Config)?;
        let outcome = match cache {
            Some(cache) => engine.solve_persistent_recorded(rng, rec, cache)?,
            None => engine.solve_recorded(rng, rec)?,
        };
        let grid_demand = outcome.schedule.grid_demand_clamped();
        let par = grid_demand.par().unwrap_or(1.0);
        Ok(PredictedResponse {
            grid_demand,
            par,
            converged: outcome.converged,
            rounds: outcome.rounds,
            cache: outcome.cache,
            schedule: outcome.schedule,
        })
    }
}

/// Rebuilds the community with every customer's PV panel and battery
/// removed — the "ignore net metering" world model.
fn strip_der(community: &Community) -> Community {
    let customers: Vec<Customer> = community
        .iter()
        .map(|customer| {
            Customer::builder(customer.id(), customer.horizon())
                .appliances(customer.appliances().iter().cloned())
                .base_load(customer.base_load().clone())
                .build()
                .expect("stripping DER preserves appliance validity")
        })
        .collect();
    Community::new(community.horizon(), customers)
        .expect("stripped community preserves ids and horizon")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_smarthome::{
        clear_sky_profile, Appliance, ApplianceKind, Battery, PowerLevels, PvPanel, TaskSpec,
    };
    use nms_types::{ApplianceId, CustomerId, Horizon, Kw, Kwh};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    fn der_community(n: usize) -> Community {
        let customers: Vec<Customer> = (0..n)
            .map(|i| {
                Customer::builder(CustomerId::new(i), day())
                    .appliance(Appliance::new(
                        ApplianceId::new(0),
                        ApplianceKind::WaterHeater,
                        PowerLevels::stepped(Kw::new(2.0), 2).unwrap(),
                        TaskSpec::new(Kwh::new(3.0), 0, 23).unwrap(),
                    ))
                    .battery(Battery::new(Kwh::new(3.0), Kwh::ZERO).unwrap())
                    .pv(PvPanel::new(Kw::new(2.5), clear_sky_profile(day(), Kw::new(2.5))).unwrap())
                    .build()
                    .unwrap()
            })
            .collect();
        Community::new(day(), customers).unwrap()
    }

    #[test]
    fn strip_der_removes_pv_and_battery() {
        let community = der_community(3);
        assert_eq!(community.trading_customers(), 3);
        let stripped = strip_der(&community);
        assert_eq!(stripped.trading_customers(), 0);
        assert_eq!(stripped.len(), 3);
        assert_eq!(stripped.total_task_energy(), community.total_task_energy());
    }

    #[test]
    fn aware_predictor_sees_midday_dip() {
        let community = der_community(4);
        let prices = PriceSignal::time_of_use(day(), 0.05, 0.2).unwrap();
        let aware =
            LoadPredictor::net_metering_aware(NetMeteringTariff::default(), GameConfig::fast());
        let naive =
            LoadPredictor::ignore_net_metering(NetMeteringTariff::default(), GameConfig::fast());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let aware_response = aware.predict(&community, &prices, &mut rng).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let naive_response = naive.predict(&community, &prices, &mut rng).unwrap();

        // The aware model sees far less midday net demand (PV supplies it).
        let midday = |r: &PredictedResponse| (10..15).map(|h| r.grid_demand[h]).sum::<f64>();
        assert!(
            midday(&aware_response) < midday(&naive_response) - 1.0,
            "aware {} vs naive {}",
            midday(&aware_response),
            midday(&naive_response)
        );
        // Total *consumption* is identical — the tasks are the same.
        assert!(
            (aware_response.load().total().value() - naive_response.load().total().value()).abs()
                < 1e-6
        );
    }

    #[test]
    fn par_is_reported_and_finite() {
        let community = der_community(3);
        let prices = PriceSignal::flat(day(), 0.1).unwrap();
        let predictor =
            LoadPredictor::net_metering_aware(NetMeteringTariff::default(), GameConfig::fast());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let response = predictor.predict(&community, &prices, &mut rng).unwrap();
        assert!(response.par.is_finite());
        assert!(response.par >= 1.0 - 1e-9);
    }

    #[test]
    fn zero_price_window_attracts_load_in_prediction() {
        // The Fig 5 mechanism through the full predictor.
        let community = der_community(4);
        let mut series = TimeSeries::filled(day(), 0.2);
        series[16] = 0.0;
        series[17] = 0.0;
        let attacked = PriceSignal::new(series).unwrap();
        let clean = PriceSignal::flat(day(), 0.2).unwrap();

        let predictor =
            LoadPredictor::ignore_net_metering(NetMeteringTariff::default(), GameConfig::fast());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let under_attack = predictor.predict(&community, &attacked, &mut rng).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let baseline = predictor.predict(&community, &clean, &mut rng).unwrap();

        assert!(
            under_attack.par > baseline.par + 0.2,
            "attack PAR {} vs baseline {}",
            under_attack.par,
            baseline.par
        );
        let window_load: f64 = (16..18).map(|h| under_attack.grid_demand[h]).sum();
        assert!(window_load > baseline.grid_demand[16] + baseline.grid_demand[17]);
    }
}
