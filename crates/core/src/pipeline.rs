//! The assembled framework configuration (Fig 2's algorithmic flow).

use serde::{Deserialize, Serialize};

use nms_pricing::NetMeteringTariff;
use nms_solver::GameConfig;
use nms_types::ValidateError;

use crate::{LoadPredictor, LongTermConfig, PricePredictor, SingleEventDetector};

/// Whether the framework models net metering (the paper's contribution) or
/// ignores it (the state of the art of [7, 8]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorMode {
    /// Model PV, batteries, and sell-back in both the price predictor and
    /// the load predictor.
    NetMeteringAware,
    /// The prior art: predict prices from price history alone and model
    /// customers as pure consumers.
    IgnoreNetMetering,
}

impl DetectorMode {
    /// Human-readable label matching the paper's table columns.
    pub fn label(&self) -> &'static str {
        match self {
            Self::NetMeteringAware => "Detection Considering Net Metering",
            Self::IgnoreNetMetering => "Detection without Considering Net Metering",
        }
    }
}

/// Everything needed to instantiate one detection framework variant
/// (Fig 2): the price predictor's features, the world model for load
/// prediction, the single-event threshold, and the POMDP settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameworkConfig {
    /// Aware vs naive.
    pub mode: DetectorMode,
    /// Slots per day of the price series.
    pub slots_per_day: usize,
    /// World model for load prediction.
    pub load: LoadPredictor,
    /// Single-event PAR threshold `δ_P`.
    pub par_threshold: f64,
    /// Long-term POMDP settings.
    pub long_term: LongTermConfig,
}

impl FrameworkConfig {
    /// A default configuration for `mode` on `slots_per_day`-slot days.
    pub fn new(mode: DetectorMode, slots_per_day: usize) -> Self {
        let tariff = NetMeteringTariff::default();
        let game = GameConfig::fast();
        let load = match mode {
            DetectorMode::NetMeteringAware => LoadPredictor::net_metering_aware(tariff, game),
            DetectorMode::IgnoreNetMetering => LoadPredictor::ignore_net_metering(tariff, game),
        };
        Self {
            mode,
            slots_per_day,
            load,
            par_threshold: 0.05,
            long_term: LongTermConfig::default(),
        }
    }

    /// Validates the assembled configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] for inconsistent pieces (e.g. an aware mode
    /// with a non-net-metering load predictor).
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.slots_per_day == 0 {
            return Err(ValidateError::new("slots_per_day must be positive"));
        }
        let expected = matches!(self.mode, DetectorMode::NetMeteringAware);
        if self.load.net_metering != expected {
            return Err(ValidateError::new(
                "detector mode and load predictor disagree on net metering",
            ));
        }
        if !self.par_threshold.is_finite() || self.par_threshold < 0.0 {
            return Err(ValidateError::new("PAR threshold must be non-negative"));
        }
        self.load.game.validate()?;
        self.long_term.validate()
    }

    /// Builds the price predictor matching the mode.
    pub fn price_predictor(&self) -> PricePredictor {
        match self.mode {
            DetectorMode::NetMeteringAware => {
                PricePredictor::net_metering_aware(self.slots_per_day)
            }
            DetectorMode::IgnoreNetMetering => PricePredictor::naive(self.slots_per_day),
        }
    }

    /// Builds the single-event detector matching the mode.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] for an invalid threshold.
    pub fn single_event_detector(&self) -> Result<SingleEventDetector, ValidateError> {
        SingleEventDetector::new(self.load, self.par_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetectorMode::*;

    #[test]
    fn presets_are_internally_consistent() {
        for mode in [NetMeteringAware, IgnoreNetMetering] {
            let config = FrameworkConfig::new(mode, 24);
            assert!(config.validate().is_ok(), "{mode:?}");
            assert_eq!(config.load.net_metering, matches!(mode, NetMeteringAware));
            let _ = config.price_predictor();
            assert!(config.single_event_detector().is_ok());
        }
    }

    #[test]
    fn validation_catches_mode_mismatch() {
        let mut config = FrameworkConfig::new(NetMeteringAware, 24);
        config.load.net_metering = false;
        assert!(config.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_threshold_and_slots() {
        let mut config = FrameworkConfig::new(NetMeteringAware, 24);
        config.par_threshold = -1.0;
        assert!(config.validate().is_err());
        let mut config = FrameworkConfig::new(NetMeteringAware, 24);
        config.slots_per_day = 0;
        assert!(config.validate().is_err());
    }

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(
            NetMeteringAware.label(),
            "Detection Considering Net Metering"
        );
        assert_eq!(
            IgnoreNetMetering.label(),
            "Detection without Considering Net Metering"
        );
    }

    #[test]
    fn price_predictor_features_differ_by_mode() {
        let aware = FrameworkConfig::new(NetMeteringAware, 24).price_predictor();
        let naive = FrameworkConfig::new(IgnoreNetMetering, 24).price_predictor();
        assert!(aware.features().target_generation);
        assert!(!naive.features().target_generation);
        assert!(!aware.features().net_demand_lags.is_empty());
        assert!(naive.features().net_demand_lags.is_empty());
    }
}
