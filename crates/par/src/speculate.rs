//! A single background worker for speculative pipelining (DESIGN.md §15).
//!
//! The speculative day pipeline overlaps day `k+1`'s market clearing with
//! day `k`'s detection: the driver submits a request describing the work it
//! *expects* to need next, keeps going on the current day, and later
//! receives the precomputed result — committing it only if the assumption
//! it was built on still holds. This module provides the threading
//! primitive for that shape: one dedicated worker thread, FIFO
//! request/response channels, and a drop implementation that always joins.
//!
//! The worker is deliberately *not* a thread pool: speculation depth one
//! (compute exactly the next day ahead) is the only depth whose assumption
//! the driver can check cheaply, and a single FIFO worker keeps responses
//! in submission order so the driver never has to match responses back to
//! requests.
//!
//! Determinism contract: the worker runs whatever closure it was spawned
//! with; it is the *caller's* job to make that closure a pure function of
//! the request (derive any RNG from request fields, never from shared
//! state). Under that discipline a speculated result is bit-identical to
//! computing the same request inline, which is what lets the pipeline
//! discard-and-recompute without observable effect.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A dedicated worker thread processing `Req → Res` jobs in FIFO order.
///
/// Responses come back in submission order via [`SpeculativeWorker::recv`].
/// Dropping the worker closes the request channel and joins the thread
/// (finishing at most the job in flight), so a driver that abandons its
/// speculation never leaks the thread.
#[derive(Debug)]
pub struct SpeculativeWorker<Req, Res> {
    tx: Option<Sender<Req>>,
    rx: Receiver<Res>,
    handle: Option<JoinHandle<()>>,
}

impl<Req: Send + 'static, Res: Send + 'static> SpeculativeWorker<Req, Res> {
    /// Spawns the worker around a job function. The function may carry
    /// mutable worker-local state (warm caches, scratch buffers) — that
    /// state lives on the worker thread for the worker's whole life.
    ///
    /// If the OS refuses to spawn a thread the worker comes up dead:
    /// [`SpeculativeWorker::submit`] returns `false` and the driver simply
    /// computes everything inline — speculation is an optimization, never
    /// a requirement.
    pub fn spawn<F>(mut work: F) -> Self
    where
        F: FnMut(Req) -> Res + Send + 'static,
    {
        let (tx, req_rx) = channel::<Req>();
        let (res_tx, rx) = channel::<Res>();
        let handle = std::thread::Builder::new()
            .name("nms-speculate".into())
            .spawn(move || {
                while let Ok(req) = req_rx.recv() {
                    if res_tx.send(work(req)).is_err() {
                        break;
                    }
                }
            })
            .ok();
        Self {
            tx: handle.is_some().then_some(tx),
            rx,
            handle,
        }
    }

    /// Enqueues a request. Returns `false` when the worker is dead (failed
    /// to spawn, or its thread exited), in which case the caller should
    /// compute the work inline.
    pub fn submit(&self, request: Req) -> bool {
        self.tx
            .as_ref()
            .is_some_and(|tx| tx.send(request).is_ok())
    }

    /// Blocks for the next response, in submission order. `None` means the
    /// worker died without producing one (a panic in the job function);
    /// callers recompute inline.
    pub fn recv(&self) -> Option<Res> {
        self.rx.recv().ok()
    }

    /// Whether the worker thread came up (it may still die later; `submit`
    /// and `recv` report that per call).
    pub fn is_alive(&self) -> bool {
        self.tx.is_some()
    }
}

impl<Req, Res> Drop for SpeculativeWorker<Req, Res> {
    fn drop(&mut self) {
        // Closing the request channel ends the worker loop; join so no
        // thread outlives the value that owns it. A panicked worker already
        // terminated — surface nothing, the caller saw `recv() == None`.
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            drop(handle.join());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_arrive_in_submission_order() {
        let worker = SpeculativeWorker::spawn(|x: u64| x * 2);
        assert!(worker.is_alive());
        for x in 0..8 {
            assert!(worker.submit(x));
        }
        for x in 0..8 {
            assert_eq!(worker.recv(), Some(x * 2));
        }
    }

    #[test]
    fn worker_keeps_local_state_across_jobs() {
        let mut total = 0u64;
        let worker = SpeculativeWorker::spawn(move |x: u64| {
            total += x;
            total
        });
        assert!(worker.submit(3));
        assert!(worker.submit(4));
        assert_eq!(worker.recv(), Some(3));
        assert_eq!(worker.recv(), Some(7));
    }

    #[test]
    fn drop_joins_with_requests_outstanding() {
        let worker = SpeculativeWorker::spawn(|x: u64| x + 1);
        assert!(worker.submit(1));
        drop(worker); // must not hang or leak
    }

    #[test]
    fn panicked_worker_reports_via_recv_and_submit() {
        let worker = SpeculativeWorker::spawn(|_: u64| -> u64 { panic!("boom") });
        assert!(worker.submit(1));
        assert_eq!(worker.recv(), None, "panicked worker yields no response");
        // The thread is gone; a later submit fails instead of wedging.
        let _ = worker.submit(2);
        assert_eq!(worker.recv(), None);
    }
}
