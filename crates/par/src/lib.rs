//! Deterministic parallel execution layer (DESIGN.md §9).
//!
//! Every hot loop in this workspace — Jacobi game rounds, parameter
//! sweeps, calibration backtests, cross-entropy sample evaluation — is a
//! map over independent items whose per-item randomness is derived from a
//! `(seed, index)` pair *before* the map runs. That makes the map's output
//! a pure function of its inputs, so running it on N worker threads must
//! produce bit-identical results to running it on one. This crate provides
//! exactly that contract:
//!
//! - **ordered results** — `par_map(threads, items, f)` returns
//!   `f(0, &items[0]) … f(n-1, &items[n-1])` in input order, however the
//!   items were scheduled across workers;
//! - **first-error propagation** — a fallible `f` fails the whole map with
//!   the error of the *lowest-index* failing item, which is the same error
//!   the sequential loop would have returned (items before it succeed in
//!   both executions);
//! - **panic rethrow with context** — a worker panic is re-raised on the
//!   calling thread as a panic naming the item index and carrying the
//!   original payload's message, instead of crossbeam's opaque
//!   `Err(Box<dyn Any>)`;
//! - **sequential degradation** — `threads <= 1` runs the plain loop on
//!   the calling thread: no spawns, no `catch_unwind`, errors short-circuit
//!   immediately.
//!
//! Scheduling is dynamic (workers pull the next item off a shared atomic
//! counter), so heterogeneous item costs balance without tuning; the
//! counter hands out indices in increasing order, which is what makes the
//! first-error guarantee cheap to keep even with early abort.
//!
//! **Granularity** (DESIGN.md §11): the worker count is clamped to the
//! host's logical cores — oversubscribing a small host only adds
//! context-switch and cache-thrash overhead while the bit-identity
//! contract already makes the thread count observationally irrelevant.
//! On a 1-core host every `par_map` therefore degrades to the sequential
//! loop, which is exactly the fastest correct schedule there. For maps
//! over many cheap items, [`auto_chunk`] sizes chunks so per-item dispatch
//! cost (one `SeqCst` fetch-add per pull) is amortized; maps over few
//! heavy items should keep chunk 1 for load balance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use nms_obs::{NoopRecorder, Recorder};
use serde::{Deserialize, Serialize};

/// The workspace-wide parallelism knob: how many worker threads a
/// parallelizable stage may use.
///
/// `threads == 1` (the serde default, so configurations written before
/// this knob existed still load unchanged) selects the sequential path
/// everywhere, which is also the reference behavior every parallel run is
/// tested bit-identical against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parallelism {
    /// Worker threads for parallel stages; `1` = sequential.
    pub threads: usize,
}

impl Parallelism {
    /// A sequential (single-threaded) configuration.
    pub const SEQUENTIAL: Self = Self { threads: 1 };

    /// Creates a knob with the given thread count.
    pub fn new(threads: usize) -> Self {
        Self { threads }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description when `threads` is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("parallelism needs at least one thread".into());
        }
        Ok(())
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::SEQUENTIAL
    }
}

/// Logical cores on this host; `1` when the count cannot be determined.
/// Cached after the first call (the underlying query is a syscall).
pub fn host_threads() -> usize {
    use std::sync::OnceLock;
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// The chunk size that amortizes per-item dispatch cost for a map of `n`
/// items over `workers` threads: roughly four pulls per worker, so dynamic
/// load balancing still has slack while the shared-counter traffic drops by
/// the chunk factor. Always at least 1.
///
/// Use this for many-cheap-item maps (e.g. objective evaluations inside an
/// optimizer iteration); keep chunk 1 for few-heavy-item maps (e.g. sweep
/// points), where balance matters more than dispatch cost.
pub fn auto_chunk(n: usize, workers: usize) -> usize {
    (n / (workers.max(1) * 4)).max(1)
}

/// The worker count actually used for a map of `n` items requested at
/// `threads`: never more workers than items, never more than the host has
/// logical cores.
fn resolve_workers(threads: usize, n: usize) -> usize {
    threads.min(n).min(host_threads())
}

/// What one item produced on a worker.
enum ItemOutcome<R, E> {
    Ok(R),
    Err(E),
    Panicked(String),
}

/// Maps `f` over `items` on up to `threads` worker threads, returning the
/// results in input order. See the crate docs for the determinism
/// contract; `f` must be a pure function of `(index, item)` for the
/// bit-identity guarantee to mean anything.
///
/// Equivalent to [`par_map_chunked`] with a chunk size of 1 — the right
/// default when per-item cost dominates scheduling cost, which is true for
/// every solver-shaped workload in this workspace.
///
/// # Errors
///
/// Returns the error of the lowest-index failing item.
///
/// # Panics
///
/// Re-raises the lowest-index worker panic on the calling thread, with the
/// item index and original message in the payload.
pub fn par_map<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    par_map_chunked_recorded(threads, 1, items, &NoopRecorder, f)
}

/// [`par_map`] with worker telemetry: records `par_maps` / `par_items`
/// counters and per-worker `par_worker_items` / `par_worker_busy_seconds`
/// histograms into `rec`. Telemetry is gathered locally on each worker and
/// recorded by the calling thread after the join, so the recorder never
/// sits on the worker hot path and results stay bit-identical to
/// [`par_map`].
///
/// # Errors
///
/// Returns the error of the lowest-index failing item.
///
/// # Panics
///
/// Re-raises the lowest-index worker panic on the calling thread, with the
/// item index and original message in the payload.
pub fn par_map_recorded<T, R, E, F>(
    threads: usize,
    items: &[T],
    rec: &dyn Recorder,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    par_map_chunked_recorded(threads, 1, items, rec, f)
}

/// Like [`par_map`], but workers pull `chunk`-sized runs of consecutive
/// indices off the shared counter — amortizing scheduling overhead when
/// individual items are cheap (e.g. objective evaluations inside an
/// optimizer iteration).
///
/// # Errors
///
/// Returns the error of the lowest-index failing item.
///
/// # Panics
///
/// Re-raises the lowest-index worker panic on the calling thread, with the
/// item index and original message in the payload.
pub fn par_map_chunked<T, R, E, F>(
    threads: usize,
    chunk: usize,
    items: &[T],
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    par_map_chunked_recorded(threads, chunk, items, &NoopRecorder, f)
}

/// [`par_map_chunked`] with the worker telemetry of [`par_map_recorded`].
///
/// # Errors
///
/// Returns the error of the lowest-index failing item.
///
/// # Panics
///
/// Re-raises the lowest-index worker panic on the calling thread, with the
/// item index and original message in the payload.
pub fn par_map_chunked_recorded<T, R, E, F>(
    threads: usize,
    chunk: usize,
    items: &[T],
    rec: &dyn Recorder,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    par_map_core(
        resolve_workers(threads, items.len()),
        chunk,
        items,
        rec,
        || (),
        |(), index, item| f(index, item),
    )
}

/// [`par_map_recorded`] with per-worker scratch state: `scratch()` is
/// called once per worker (once total on the sequential path) and the
/// resulting value is threaded mutably through every item that worker
/// processes. This is the persistent-workspace hook solvers use to keep
/// their hot paths allocation-free across items (DESIGN.md §11): the
/// scratch is reused, never shared, and must be fully overwritten by `f`
/// for the bit-identity contract to hold — `f`'s result must be a pure
/// function of `(index, item)` regardless of what earlier items left in
/// the scratch.
///
/// # Errors
///
/// Returns the error of the lowest-index failing item.
///
/// # Panics
///
/// Re-raises the lowest-index worker panic on the calling thread, with the
/// item index and original message in the payload.
pub fn par_map_scratch_recorded<T, R, E, W, S, F>(
    threads: usize,
    items: &[T],
    rec: &dyn Recorder,
    scratch: S,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    W: Send,
    S: Fn() -> W + Sync,
    F: Fn(&mut W, usize, &T) -> Result<R, E> + Sync,
{
    par_map_core(
        resolve_workers(threads, items.len()),
        1,
        items,
        rec,
        scratch,
        f,
    )
}

/// The shared map engine. `workers` is already resolved (≤ items, ≤ host
/// cores); `scratch` builds one per-worker state reused across that
/// worker's items.
fn par_map_core<T, R, E, W, S, F>(
    workers: usize,
    chunk: usize,
    items: &[T],
    rec: &dyn Recorder,
    scratch: S,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    W: Send,
    S: Fn() -> W + Sync,
    F: Fn(&mut W, usize, &T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let chunk = chunk.max(1);
    rec.add("par_maps", 1);
    rec.add("par_items", n as u64);
    if workers <= 1 {
        // Sequential path: the reference behavior. No spawns, no
        // catch_unwind, immediate short-circuit on the first error.
        let busy = Instant::now();
        let mut ws = scratch();
        let mut results = Vec::with_capacity(n);
        for (index, item) in items.iter().enumerate() {
            results.push(f(&mut ws, index, item)?);
        }
        rec.observe("par_worker_items", n as f64);
        rec.observe("par_worker_busy_seconds", busy.elapsed().as_secs_f64());
        return Ok(results);
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let f = &f;
    let scratch = &scratch;
    let next = &next;
    let abort = &abort;

    // Workers return (index, outcome) pairs plus their own load tally;
    // merging the pairs into index order afterwards is what makes the
    // output independent of scheduling, and recording the tallies only
    // after the join keeps the recorder off the worker hot path.
    type WorkerYield<R, E> = (Vec<(usize, ItemOutcome<R, E>)>, f64);
    let gathered: Vec<WorkerYield<R, E>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move |_| {
                    let busy = Instant::now();
                    let mut ws = scratch();
                    let mut local: Vec<(usize, ItemOutcome<R, E>)> = Vec::new();
                    'pull: while !abort.load(Ordering::SeqCst) {
                        let start = next.fetch_add(chunk, Ordering::SeqCst);
                        if start >= n {
                            break;
                        }
                        for index in start..(start + chunk).min(n) {
                            match catch_unwind(AssertUnwindSafe(|| f(&mut ws, index, &items[index]))) {
                                Ok(Ok(value)) => local.push((index, ItemOutcome::Ok(value))),
                                Ok(Err(err)) => {
                                    local.push((index, ItemOutcome::Err(err)));
                                    abort.store(true, Ordering::SeqCst);
                                    break 'pull;
                                }
                                Err(payload) => {
                                    local.push((
                                        index,
                                        ItemOutcome::Panicked(payload_message(payload.as_ref())),
                                    ));
                                    abort.store(true, Ordering::SeqCst);
                                    break 'pull;
                                }
                            }
                        }
                    }
                    (local, busy.elapsed().as_secs_f64())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("nms-par: worker vanished without result"))
            .collect()
    })
    .expect("nms-par: scope itself panicked");

    let mut slots: Vec<Option<ItemOutcome<R, E>>> = (0..n).map(|_| None).collect();
    for (local, busy_secs) in gathered {
        rec.observe("par_worker_items", local.len() as f64);
        rec.observe("par_worker_busy_seconds", busy_secs);
        for (index, outcome) in local {
            slots[index] = Some(outcome);
        }
    }

    // The counter hands indices out in increasing order and a pulled chunk
    // runs to its first failure, so every index below the lowest failure is
    // guaranteed Some(Ok) — the ascending scan below therefore reports
    // exactly the failure the sequential loop would have hit first.
    let mut results = Vec::with_capacity(n);
    for (index, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(ItemOutcome::Ok(value)) => results.push(value),
            Some(ItemOutcome::Err(err)) => return Err(err),
            Some(ItemOutcome::Panicked(message)) => {
                panic!("nms-par: worker panicked on item {index}: {message}")
            }
            None => unreachable!("nms-par: item {index} skipped before the first failure"),
        }
    }
    Ok(results)
}

/// Renders a panic payload's message for the rethrow; panics almost always
/// carry `&str` or `String`.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn square(index: usize, item: &u64) -> Result<u64, String> {
        let _ = index;
        Ok(item * item)
    }

    /// Runs the map engine with an explicit worker count, bypassing the
    /// host-core clamp so the genuinely-parallel path is exercised even on
    /// small CI hosts.
    fn forced<T: Sync, R: Send, E: Send>(
        workers: usize,
        chunk: usize,
        items: &[T],
        f: impl Fn(usize, &T) -> Result<R, E> + Sync,
    ) -> Result<Vec<R>, E> {
        par_map_core(
            workers.min(items.len()),
            chunk,
            items,
            &NoopRecorder,
            || (),
            |(), index, item| f(index, item),
        )
    }

    #[test]
    fn parallelism_defaults_sequential_and_validates() {
        assert_eq!(Parallelism::default().threads, 1);
        assert!(Parallelism::default().validate().is_ok());
        assert!(Parallelism::new(0).validate().is_err());
        assert_eq!(Parallelism::SEQUENTIAL, Parallelism::new(1));
    }

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = forced(4, 1, &items, square).unwrap();
        let expected: Vec<u64> = items.iter().map(|v| v * v).collect();
        assert_eq!(out, expected);
        // The public entry point (possibly core-clamped) agrees.
        assert_eq!(par_map(4, &items, square).unwrap(), expected);
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let items: Vec<u64> = (0..64).collect();
        let seq = par_map(1, &items, square).unwrap();
        for threads in [2, 3, 4, 8] {
            assert_eq!(forced(threads, 1, &items, square).unwrap(), seq);
            assert_eq!(forced(threads, 5, &items, square).unwrap(), seq);
            assert_eq!(par_map(threads, &items, square).unwrap(), seq);
            assert_eq!(par_map_chunked(threads, 5, &items, square).unwrap(), seq);
        }
    }

    #[test]
    fn worker_clamp_and_auto_chunk_heuristics() {
        let cores = host_threads();
        assert!(cores >= 1);
        assert_eq!(resolve_workers(8, 3), 3.min(cores));
        assert_eq!(resolve_workers(2, 100), 2.min(cores));
        assert_eq!(resolve_workers(1, 100), 1);
        assert_eq!(auto_chunk(0, 4), 1);
        assert_eq!(auto_chunk(32, 4), 2);
        assert_eq!(auto_chunk(256, 4), 16);
        assert_eq!(auto_chunk(7, 0), 1, "zero workers must not divide by zero");
    }

    #[test]
    fn scratch_state_is_per_worker_and_results_match_sequential() {
        // The scratch is deliberately left dirty between items; f fully
        // overwrites it, so results must match the stateless map.
        let items: Vec<u64> = (0..50).collect();
        let run = |workers: usize| {
            par_map_core(
                workers,
                1,
                &items,
                &NoopRecorder,
                Vec::<u64>::new,
                |ws, _index, item: &u64| -> Result<u64, String> {
                    // Reuse the buffer without clearing first: stale length
                    // from the previous item must not leak into the result.
                    ws.clear();
                    ws.extend(std::iter::repeat(*item).take((*item % 7) as usize + 1));
                    Ok(ws.iter().sum::<u64>() / ws.len() as u64 * *item)
                },
            )
        };
        let seq = run(1).unwrap();
        for workers in [2, 4] {
            assert_eq!(run(workers).unwrap(), seq);
        }
        let expected: Vec<u64> = items.iter().map(|v| v * v).collect();
        assert_eq!(seq, expected);
        // Public entry point with scratch.
        let public = par_map_scratch_recorded(
            4,
            &items,
            &NoopRecorder,
            Vec::<u64>::new,
            |ws, _i, item: &u64| -> Result<u64, String> {
                ws.clear();
                ws.push(*item);
                Ok(ws[0] * ws[0])
            },
        )
        .unwrap();
        assert_eq!(public, expected);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert_eq!(par_map(4, &empty, square).unwrap(), Vec::<u64>::new());
        assert_eq!(par_map(4, &[3u64], square).unwrap(), vec![9]);
    }

    #[test]
    fn first_error_by_index_wins() {
        let items: Vec<u64> = (0..40).collect();
        let f = |_i: usize, item: &u64| -> Result<u64, String> {
            if *item >= 7 && item % 2 == 1 {
                Err(format!("item {item} failed"))
            } else {
                Ok(*item)
            }
        };
        let seq_err = par_map(1, &items, f).unwrap_err();
        for threads in [2, 4, 8] {
            assert_eq!(forced(threads, 1, &items, f).unwrap_err(), seq_err);
            assert_eq!(par_map(threads, &items, f).unwrap_err(), seq_err);
        }
        assert_eq!(seq_err, "item 7 failed");
    }

    #[test]
    fn worker_panic_rethrows_with_item_context() {
        let items: Vec<u64> = (0..16).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            forced(4, 1, &items, |_i, item: &u64| -> Result<u64, String> {
                if *item == 5 {
                    panic!("boom at five");
                }
                Ok(*item)
            })
        }));
        let payload = result.unwrap_err();
        let message = payload_message(payload.as_ref());
        assert!(message.contains("item 5"), "{message}");
        assert!(message.contains("boom at five"), "{message}");
    }

    #[test]
    fn sequential_path_short_circuits_without_evaluating_later_items() {
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let items: Vec<u64> = (0..10).collect();
        let err = par_map(1, &items, |_i, item: &u64| -> Result<u64, String> {
            calls.fetch_add(1, Ordering::SeqCst);
            if *item == 2 {
                Err("stop".into())
            } else {
                Ok(*item)
            }
        })
        .unwrap_err();
        assert_eq!(err, "stop");
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn recorded_map_tallies_workers_without_changing_results() {
        let items: Vec<u64> = (0..32).collect();
        let metrics = nms_obs::MetricsRegistry::new();
        let out = par_map_recorded(4, &items, &metrics, square).unwrap();
        assert_eq!(out, par_map(1, &items, square).unwrap());
        assert_eq!(metrics.counter("par_maps"), 1);
        assert_eq!(metrics.counter("par_items"), 32);
        let per_worker = metrics.histogram("par_worker_items").unwrap();
        assert_eq!(per_worker.sum(), 32.0, "every item lands on some worker");
        assert!(metrics.histogram("par_worker_busy_seconds").is_some());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items: Vec<u64> = (0..3).collect();
        assert_eq!(par_map(16, &items, square).unwrap(), vec![0, 1, 4]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_parallel_matches_sequential(
            len in 0usize..50,
            threads in 1usize..9,
            chunk in 1usize..7,
            salt in 0u64..1000,
        ) {
            let items: Vec<u64> = (0..len as u64).map(|v| v.wrapping_mul(salt + 1)).collect();
            let f = |i: usize, item: &u64| -> Result<u64, String> {
                Ok(item.wrapping_add(i as u64))
            };
            let seq = par_map(1, &items, f).unwrap();
            let par = par_map_chunked(threads, chunk, &items, f).unwrap();
            prop_assert_eq!(seq, par);
        }
    }
}
