//! Deterministic parallel execution layer (DESIGN.md §9).
//!
//! Every hot loop in this workspace — Jacobi game rounds, parameter
//! sweeps, calibration backtests, cross-entropy sample evaluation — is a
//! map over independent items whose per-item randomness is derived from a
//! `(seed, index)` pair *before* the map runs. That makes the map's output
//! a pure function of its inputs, so running it on N worker threads must
//! produce bit-identical results to running it on one. This crate provides
//! exactly that contract:
//!
//! - **ordered results** — `par_map(threads, items, f)` returns
//!   `f(0, &items[0]) … f(n-1, &items[n-1])` in input order, however the
//!   items were scheduled across workers;
//! - **first-error propagation** — a fallible `f` fails the whole map with
//!   the error of the *lowest-index* failing item, which is the same error
//!   the sequential loop would have returned (items before it succeed in
//!   both executions);
//! - **panic rethrow with context** — a worker panic is re-raised on the
//!   calling thread as a panic naming the item index and carrying the
//!   original payload's message, instead of crossbeam's opaque
//!   `Err(Box<dyn Any>)`;
//! - **sequential degradation** — `threads <= 1` runs the plain loop on
//!   the calling thread: no spawns, errors short-circuit immediately, and
//!   a panic surfaces with the same item-index context as the parallel
//!   path (every entry point shares one panic-capture code path);
//! - **failure containment** — [`par_map_outcomes`] is the supervision
//!   surface: instead of propagating the lowest-index failure it runs
//!   *every* item to completion and returns a per-item [`Outcome`]
//!   (`Ok`/`Err`/`Panicked`), so one item's panic cannot take down its
//!   siblings — the isolation primitive the shard fleet is built on.
//!
//! Scheduling is dynamic (workers pull the next item off a shared atomic
//! counter), so heterogeneous item costs balance without tuning; the
//! counter hands out indices in increasing order, which is what makes the
//! first-error guarantee cheap to keep even with early abort.
//!
//! **Granularity** (DESIGN.md §11): the worker count is clamped to the
//! host's logical cores — oversubscribing a small host only adds
//! context-switch and cache-thrash overhead while the bit-identity
//! contract already makes the thread count observationally irrelevant.
//! On a 1-core host every `par_map` therefore degrades to the sequential
//! loop, which is exactly the fastest correct schedule there. For maps
//! over many cheap items, [`auto_chunk`] sizes chunks so per-item dispatch
//! cost (one `SeqCst` fetch-add per pull) is amortized; maps over few
//! heavy items should keep chunk 1 for load balance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use nms_obs::{NoopRecorder, Recorder};
use serde::{Deserialize, Serialize};

mod speculate;

pub use speculate::SpeculativeWorker;

/// The workspace-wide parallelism knob: how many worker threads a
/// parallelizable stage may use.
///
/// `threads == 1` (the serde default, so configurations written before
/// this knob existed still load unchanged) selects the sequential path
/// everywhere, which is also the reference behavior every parallel run is
/// tested bit-identical against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parallelism {
    /// Worker threads for parallel stages; `1` = sequential.
    pub threads: usize,
}

impl Parallelism {
    /// A sequential (single-threaded) configuration.
    pub const SEQUENTIAL: Self = Self { threads: 1 };

    /// Creates a knob with the given thread count.
    pub fn new(threads: usize) -> Self {
        Self { threads }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description when `threads` is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("parallelism needs at least one thread".into());
        }
        Ok(())
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::SEQUENTIAL
    }
}

/// Logical cores on this host; `1` when the count cannot be determined.
/// Cached after the first call (the underlying query is a syscall).
pub fn host_threads() -> usize {
    use std::sync::OnceLock;
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// The chunk size that amortizes per-item dispatch cost for a map of `n`
/// items over `workers` threads: roughly four pulls per worker, so dynamic
/// load balancing still has slack while the shared-counter traffic drops by
/// the chunk factor. Always at least 1.
///
/// Use this for many-cheap-item maps (e.g. objective evaluations inside an
/// optimizer iteration); keep chunk 1 for few-heavy-item maps (e.g. sweep
/// points), where balance matters more than dispatch cost.
pub fn auto_chunk(n: usize, workers: usize) -> usize {
    (n / (workers.max(1) * 4)).max(1)
}

/// The worker count actually used for a map of `n` items requested at
/// `threads`: never more workers than items, never more than the host has
/// logical cores.
fn resolve_workers(threads: usize, n: usize) -> usize {
    threads.min(n).min(host_threads())
}

/// What one item of an isolating map produced — the per-item verdict
/// [`par_map_outcomes`] returns instead of rethrowing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome<R, E> {
    /// The item's closure returned `Ok`.
    Ok(R),
    /// The item's closure returned `Err`.
    Err(E),
    /// The item's closure panicked; the message names the item index and
    /// carries the captured payload's message (or the
    /// `"non-string panic payload"` fallback for exotic payload types).
    Panicked(String),
}

impl<R, E> Outcome<R, E> {
    /// `true` for [`Outcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, Self::Ok(_))
    }

    /// `true` for [`Outcome::Panicked`].
    pub fn is_panicked(&self) -> bool {
        matches!(self, Self::Panicked(_))
    }

    /// The success value, if any.
    pub fn ok(self) -> Option<R> {
        match self {
            Self::Ok(value) => Some(value),
            _ => None,
        }
    }
}

/// Maps `f` over `items` on up to `threads` worker threads, returning the
/// results in input order. See the crate docs for the determinism
/// contract; `f` must be a pure function of `(index, item)` for the
/// bit-identity guarantee to mean anything.
///
/// Equivalent to [`par_map_chunked`] with a chunk size of 1 — the right
/// default when per-item cost dominates scheduling cost, which is true for
/// every solver-shaped workload in this workspace.
///
/// # Errors
///
/// Returns the error of the lowest-index failing item.
///
/// # Panics
///
/// Re-raises the lowest-index worker panic on the calling thread, with the
/// item index and original message in the payload.
pub fn par_map<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    par_map_chunked_recorded(threads, 1, items, &NoopRecorder, f)
}

/// [`par_map`] with worker telemetry: records `par_maps` / `par_items`
/// counters and per-worker `par_worker_items` / `par_worker_busy_seconds`
/// histograms into `rec`. Telemetry is gathered locally on each worker and
/// recorded by the calling thread after the join, so the recorder never
/// sits on the worker hot path and results stay bit-identical to
/// [`par_map`].
///
/// # Errors
///
/// Returns the error of the lowest-index failing item.
///
/// # Panics
///
/// Re-raises the lowest-index worker panic on the calling thread, with the
/// item index and original message in the payload.
pub fn par_map_recorded<T, R, E, F>(
    threads: usize,
    items: &[T],
    rec: &dyn Recorder,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    par_map_chunked_recorded(threads, 1, items, rec, f)
}

/// Like [`par_map`], but workers pull `chunk`-sized runs of consecutive
/// indices off the shared counter — amortizing scheduling overhead when
/// individual items are cheap (e.g. objective evaluations inside an
/// optimizer iteration).
///
/// # Errors
///
/// Returns the error of the lowest-index failing item.
///
/// # Panics
///
/// Re-raises the lowest-index worker panic on the calling thread, with the
/// item index and original message in the payload.
pub fn par_map_chunked<T, R, E, F>(
    threads: usize,
    chunk: usize,
    items: &[T],
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    par_map_chunked_recorded(threads, chunk, items, &NoopRecorder, f)
}

/// [`par_map_chunked`] with the worker telemetry of [`par_map_recorded`].
///
/// # Errors
///
/// Returns the error of the lowest-index failing item.
///
/// # Panics
///
/// Re-raises the lowest-index worker panic on the calling thread, with the
/// item index and original message in the payload.
pub fn par_map_chunked_recorded<T, R, E, F>(
    threads: usize,
    chunk: usize,
    items: &[T],
    rec: &dyn Recorder,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    par_map_core(
        resolve_workers(threads, items.len()),
        chunk,
        items,
        rec,
        || (),
        |(), index, item| f(index, item),
    )
}

/// [`par_map_recorded`] with per-worker scratch state: `scratch()` is
/// called once per worker (once total on the sequential path) and the
/// resulting value is threaded mutably through every item that worker
/// processes. This is the persistent-workspace hook solvers use to keep
/// their hot paths allocation-free across items (DESIGN.md §11): the
/// scratch is reused, never shared, and must be fully overwritten by `f`
/// for the bit-identity contract to hold — `f`'s result must be a pure
/// function of `(index, item)` regardless of what earlier items left in
/// the scratch.
///
/// # Errors
///
/// Returns the error of the lowest-index failing item.
///
/// # Panics
///
/// Re-raises the lowest-index worker panic on the calling thread, with the
/// item index and original message in the payload.
pub fn par_map_scratch_recorded<T, R, E, W, S, F>(
    threads: usize,
    items: &[T],
    rec: &dyn Recorder,
    scratch: S,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    W: Send,
    S: Fn() -> W + Sync,
    F: Fn(&mut W, usize, &T) -> Result<R, E> + Sync,
{
    par_map_core(
        resolve_workers(threads, items.len()),
        1,
        items,
        rec,
        scratch,
        f,
    )
}

/// Maps `f` over every item and returns one [`Outcome`] per item, in input
/// order: failures are *contained*, not propagated. An item whose closure
/// returns `Err` or panics yields `Outcome::Err` / `Outcome::Panicked` for
/// that slot while every other item still runs to completion — no early
/// abort, no rethrow. This is the isolation surface supervisors build on:
/// one shard's panic must not take down its siblings.
///
/// The `threads <= 1` path still degrades to a loop on the calling thread,
/// but (unlike [`par_map`]) it catches panics per item, so the containment
/// contract is thread-count independent.
pub fn par_map_outcomes<T, R, E, F>(threads: usize, items: &[T], f: F) -> Vec<Outcome<R, E>>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    par_map_outcomes_recorded(threads, items, &NoopRecorder, f)
}

/// [`par_map_outcomes`] with the worker telemetry of [`par_map_recorded`].
pub fn par_map_outcomes_recorded<T, R, E, F>(
    threads: usize,
    items: &[T],
    rec: &dyn Recorder,
    f: F,
) -> Vec<Outcome<R, E>>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let slots = outcomes_core(
        resolve_workers(threads, items.len()),
        1,
        items,
        rec,
        || (),
        |(), index, item| f(index, item),
        false,
    );
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| match slot {
            Some(Outcome::Panicked(message)) => {
                Outcome::Panicked(format!("item {index}: {message}"))
            }
            Some(outcome) => outcome,
            None => unreachable!("nms-par: non-aborting map skipped item {index}"),
        })
        .collect()
}

/// The shared rethrowing consumer: runs the engine in abort-on-first-failure
/// mode, then replays the lowest-index failure exactly as the sequential
/// loop would have surfaced it.
fn par_map_core<T, R, E, W, S, F>(
    workers: usize,
    chunk: usize,
    items: &[T],
    rec: &dyn Recorder,
    scratch: S,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    W: Send,
    S: Fn() -> W + Sync,
    F: Fn(&mut W, usize, &T) -> Result<R, E> + Sync,
{
    let slots = outcomes_core(workers, chunk, items, rec, scratch, f, true);
    // The counter hands indices out in increasing order and a pulled chunk
    // runs to its first failure, so every index below the lowest failure is
    // guaranteed Some(Ok) — the ascending scan below therefore reports
    // exactly the failure the sequential loop would have hit first.
    let mut results = Vec::with_capacity(items.len());
    for (index, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Outcome::Ok(value)) => results.push(value),
            Some(Outcome::Err(err)) => return Err(err),
            Some(Outcome::Panicked(message)) => {
                panic!("nms-par: worker panicked on item {index}: {message}")
            }
            None => unreachable!("nms-par: item {index} skipped before the first failure"),
        }
    }
    Ok(results)
}

/// The one map engine behind every entry point. `workers` is already
/// resolved (≤ items, ≤ host cores); `scratch` builds one per-worker state
/// reused across that worker's items; `abort` selects fail-fast (the
/// rethrowing surfaces) versus run-everything (the outcome surface). Every
/// panic, on any path, is captured by exactly this function's
/// `catch_unwind`, so payload handling cannot drift between surfaces.
fn outcomes_core<T, R, E, W, S, F>(
    workers: usize,
    chunk: usize,
    items: &[T],
    rec: &dyn Recorder,
    scratch: S,
    f: F,
    abort_on_failure: bool,
) -> Vec<Option<Outcome<R, E>>>
where
    T: Sync,
    R: Send,
    E: Send,
    W: Send,
    S: Fn() -> W + Sync,
    F: Fn(&mut W, usize, &T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let chunk = chunk.max(1);
    rec.add("par_maps", 1);
    rec.add("par_items", n as u64);
    if workers <= 1 {
        // Sequential path: the reference behavior. No spawns; in abort
        // mode the first failure short-circuits immediately.
        let busy = Instant::now();
        let mut ws = scratch();
        let mut slots: Vec<Option<Outcome<R, E>>> = (0..n).map(|_| None).collect();
        let mut done = 0usize;
        for (index, item) in items.iter().enumerate() {
            let outcome = run_item(&mut ws, index, item, &f);
            let failed = !outcome.is_ok();
            slots[index] = Some(outcome);
            done += 1;
            if failed && abort_on_failure {
                break;
            }
        }
        rec.observe("par_worker_items", done as f64);
        rec.observe("par_worker_busy_seconds", busy.elapsed().as_secs_f64());
        return slots;
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let f = &f;
    let scratch = &scratch;
    let next = &next;
    let abort = &abort;

    // Workers return (index, outcome) pairs plus their own load tally;
    // merging the pairs into index order afterwards is what makes the
    // output independent of scheduling, and recording the tallies only
    // after the join keeps the recorder off the worker hot path.
    type WorkerYield<R, E> = (Vec<(usize, Outcome<R, E>)>, f64);
    let gathered: Vec<WorkerYield<R, E>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move |_| {
                    let busy = Instant::now();
                    let mut ws = scratch();
                    let mut local: Vec<(usize, Outcome<R, E>)> = Vec::new();
                    'pull: while !abort.load(Ordering::SeqCst) {
                        let start = next.fetch_add(chunk, Ordering::SeqCst);
                        if start >= n {
                            break;
                        }
                        for index in start..(start + chunk).min(n) {
                            let outcome = run_item(&mut ws, index, &items[index], f);
                            let failed = !outcome.is_ok();
                            local.push((index, outcome));
                            if failed && abort_on_failure {
                                abort.store(true, Ordering::SeqCst);
                                break 'pull;
                            }
                        }
                    }
                    (local, busy.elapsed().as_secs_f64())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("nms-par: worker vanished without result"))
            .collect()
    })
    .expect("nms-par: scope itself panicked");

    let mut slots: Vec<Option<Outcome<R, E>>> = (0..n).map(|_| None).collect();
    for (local, busy_secs) in gathered {
        rec.observe("par_worker_items", local.len() as f64);
        rec.observe("par_worker_busy_seconds", busy_secs);
        for (index, outcome) in local {
            slots[index] = Some(outcome);
        }
    }
    slots
}

/// Runs one item under the engine's single `catch_unwind`.
fn run_item<T, R, E, W, F>(ws: &mut W, index: usize, item: &T, f: &F) -> Outcome<R, E>
where
    F: Fn(&mut W, usize, &T) -> Result<R, E>,
{
    match catch_unwind(AssertUnwindSafe(|| f(ws, index, item))) {
        Ok(Ok(value)) => Outcome::Ok(value),
        Ok(Err(err)) => Outcome::Err(err),
        Err(payload) => Outcome::Panicked(payload_message(payload.as_ref())),
    }
}

/// Renders a panic payload's message for the rethrow. Panics almost always
/// carry `&str` or `String`; a few primitive `panic_any` payloads are
/// probed too, and anything else falls back to a stable
/// `"non-string panic payload"` marker (the surrounding context always
/// names the item index, so even an opaque payload stays attributable).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(v) = payload.downcast_ref::<u64>() {
        format!("non-string panic payload (u64: {v})")
    } else if let Some(v) = payload.downcast_ref::<i64>() {
        format!("non-string panic payload (i64: {v})")
    } else if let Some(v) = payload.downcast_ref::<u32>() {
        format!("non-string panic payload (u32: {v})")
    } else if let Some(v) = payload.downcast_ref::<i32>() {
        format!("non-string panic payload (i32: {v})")
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn square(index: usize, item: &u64) -> Result<u64, String> {
        let _ = index;
        Ok(item * item)
    }

    /// Runs the map engine with an explicit worker count, bypassing the
    /// host-core clamp so the genuinely-parallel path is exercised even on
    /// small CI hosts.
    fn forced<T: Sync, R: Send, E: Send>(
        workers: usize,
        chunk: usize,
        items: &[T],
        f: impl Fn(usize, &T) -> Result<R, E> + Sync,
    ) -> Result<Vec<R>, E> {
        par_map_core(
            workers.min(items.len()),
            chunk,
            items,
            &NoopRecorder,
            || (),
            |(), index, item| f(index, item),
        )
    }

    #[test]
    fn parallelism_defaults_sequential_and_validates() {
        assert_eq!(Parallelism::default().threads, 1);
        assert!(Parallelism::default().validate().is_ok());
        assert!(Parallelism::new(0).validate().is_err());
        assert_eq!(Parallelism::SEQUENTIAL, Parallelism::new(1));
    }

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = forced(4, 1, &items, square).unwrap();
        let expected: Vec<u64> = items.iter().map(|v| v * v).collect();
        assert_eq!(out, expected);
        // The public entry point (possibly core-clamped) agrees.
        assert_eq!(par_map(4, &items, square).unwrap(), expected);
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let items: Vec<u64> = (0..64).collect();
        let seq = par_map(1, &items, square).unwrap();
        for threads in [2, 3, 4, 8] {
            assert_eq!(forced(threads, 1, &items, square).unwrap(), seq);
            assert_eq!(forced(threads, 5, &items, square).unwrap(), seq);
            assert_eq!(par_map(threads, &items, square).unwrap(), seq);
            assert_eq!(par_map_chunked(threads, 5, &items, square).unwrap(), seq);
        }
    }

    #[test]
    fn worker_clamp_and_auto_chunk_heuristics() {
        let cores = host_threads();
        assert!(cores >= 1);
        assert_eq!(resolve_workers(8, 3), 3.min(cores));
        assert_eq!(resolve_workers(2, 100), 2.min(cores));
        assert_eq!(resolve_workers(1, 100), 1);
        assert_eq!(auto_chunk(0, 4), 1);
        assert_eq!(auto_chunk(32, 4), 2);
        assert_eq!(auto_chunk(256, 4), 16);
        assert_eq!(auto_chunk(7, 0), 1, "zero workers must not divide by zero");
    }

    #[test]
    fn scratch_state_is_per_worker_and_results_match_sequential() {
        // The scratch is deliberately left dirty between items; f fully
        // overwrites it, so results must match the stateless map.
        let items: Vec<u64> = (0..50).collect();
        let run = |workers: usize| {
            par_map_core(
                workers,
                1,
                &items,
                &NoopRecorder,
                Vec::<u64>::new,
                |ws, _index, item: &u64| -> Result<u64, String> {
                    // Reuse the buffer without clearing first: stale length
                    // from the previous item must not leak into the result.
                    ws.clear();
                    ws.extend(std::iter::repeat(*item).take((*item % 7) as usize + 1));
                    Ok(ws.iter().sum::<u64>() / ws.len() as u64 * *item)
                },
            )
        };
        let seq = run(1).unwrap();
        for workers in [2, 4] {
            assert_eq!(run(workers).unwrap(), seq);
        }
        let expected: Vec<u64> = items.iter().map(|v| v * v).collect();
        assert_eq!(seq, expected);
        // Public entry point with scratch.
        let public = par_map_scratch_recorded(
            4,
            &items,
            &NoopRecorder,
            Vec::<u64>::new,
            |ws, _i, item: &u64| -> Result<u64, String> {
                ws.clear();
                ws.push(*item);
                Ok(ws[0] * ws[0])
            },
        )
        .unwrap();
        assert_eq!(public, expected);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert_eq!(par_map(4, &empty, square).unwrap(), Vec::<u64>::new());
        assert_eq!(par_map(4, &[3u64], square).unwrap(), vec![9]);
    }

    #[test]
    fn first_error_by_index_wins() {
        let items: Vec<u64> = (0..40).collect();
        let f = |_i: usize, item: &u64| -> Result<u64, String> {
            if *item >= 7 && item % 2 == 1 {
                Err(format!("item {item} failed"))
            } else {
                Ok(*item)
            }
        };
        let seq_err = par_map(1, &items, f).unwrap_err();
        for threads in [2, 4, 8] {
            assert_eq!(forced(threads, 1, &items, f).unwrap_err(), seq_err);
            assert_eq!(par_map(threads, &items, f).unwrap_err(), seq_err);
        }
        assert_eq!(seq_err, "item 7 failed");
    }

    #[test]
    fn worker_panic_rethrows_with_item_context() {
        let items: Vec<u64> = (0..16).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            forced(4, 1, &items, |_i, item: &u64| -> Result<u64, String> {
                if *item == 5 {
                    panic!("boom at five");
                }
                Ok(*item)
            })
        }));
        let payload = result.unwrap_err();
        let message = payload_message(payload.as_ref());
        assert!(message.contains("item 5"), "{message}");
        assert!(message.contains("boom at five"), "{message}");
    }

    #[test]
    fn sequential_path_short_circuits_without_evaluating_later_items() {
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let items: Vec<u64> = (0..10).collect();
        let err = par_map(1, &items, |_i, item: &u64| -> Result<u64, String> {
            calls.fetch_add(1, Ordering::SeqCst);
            if *item == 2 {
                Err("stop".into())
            } else {
                Ok(*item)
            }
        })
        .unwrap_err();
        assert_eq!(err, "stop");
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn recorded_map_tallies_workers_without_changing_results() {
        let items: Vec<u64> = (0..32).collect();
        let metrics = nms_obs::MetricsRegistry::new();
        let out = par_map_recorded(4, &items, &metrics, square).unwrap();
        assert_eq!(out, par_map(1, &items, square).unwrap());
        assert_eq!(metrics.counter("par_maps"), 1);
        assert_eq!(metrics.counter("par_items"), 32);
        let per_worker = metrics.histogram("par_worker_items").unwrap();
        assert_eq!(per_worker.sum(), 32.0, "every item lands on some worker");
        assert!(metrics.histogram("par_worker_busy_seconds").is_some());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items: Vec<u64> = (0..3).collect();
        assert_eq!(par_map(16, &items, square).unwrap(), vec![0, 1, 4]);
    }

    #[test]
    fn outcomes_contain_failures_and_run_every_item() {
        let items: Vec<u64> = (0..24).collect();
        let f = |_i: usize, item: &u64| -> Result<u64, String> {
            match *item % 5 {
                3 => Err(format!("soft failure on {item}")),
                4 => panic!("hard failure on {item}"),
                _ => Ok(item * 10),
            }
        };
        for threads in [1, 2, 4, 8] {
            let outcomes = par_map_outcomes(threads, &items, f);
            assert_eq!(outcomes.len(), items.len(), "no item may be skipped");
            for (index, (outcome, item)) in outcomes.iter().zip(&items).enumerate() {
                match *item % 5 {
                    3 => assert_eq!(
                        outcome,
                        &Outcome::Err(format!("soft failure on {item}"))
                    ),
                    4 => match outcome {
                        Outcome::Panicked(message) => {
                            assert!(message.contains(&format!("item {index}")), "{message}");
                            assert!(
                                message.contains(&format!("hard failure on {item}")),
                                "{message}"
                            );
                        }
                        other => panic!("expected Panicked, got {other:?}"),
                    },
                    _ => assert_eq!(outcome, &Outcome::Ok(item * 10)),
                }
            }
        }
    }

    #[test]
    fn outcomes_sequential_path_contains_panics_too() {
        // threads=1 must not rethrow: the containment contract is
        // thread-count independent.
        let items: Vec<u64> = (0..4).collect();
        let outcomes = par_map_outcomes(1, &items, |_i, item: &u64| -> Result<u64, String> {
            if *item == 0 {
                panic!("first item dies");
            }
            Ok(*item)
        });
        assert!(outcomes[0].is_panicked());
        assert_eq!(outcomes[1..], [Outcome::Ok(1), Outcome::Ok(2), Outcome::Ok(3)]);
    }

    #[test]
    fn outcomes_accessors_and_order() {
        let items: Vec<u64> = (0..12).collect();
        let outcomes = par_map_outcomes(4, &items, square);
        assert!(outcomes.iter().all(Outcome::is_ok));
        let values: Vec<u64> = outcomes.into_iter().filter_map(Outcome::ok).collect();
        let expected: Vec<u64> = items.iter().map(|v| v * v).collect();
        assert_eq!(values, expected);
    }

    #[test]
    fn non_string_panic_payloads_fall_back_with_item_index() {
        let items: Vec<u64> = (0..3).collect();
        let outcomes = par_map_outcomes(2, &items, |_i, item: &u64| -> Result<u64, String> {
            if *item == 1 {
                std::panic::panic_any(1234u64);
            }
            Ok(*item)
        });
        match &outcomes[1] {
            Outcome::Panicked(message) => {
                assert!(message.contains("item 1"), "{message}");
                assert!(message.contains("non-string panic payload"), "{message}");
                assert!(message.contains("1234"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // A payload type the probe does not know still lands on the
        // stable fallback marker.
        #[derive(Debug)]
        struct Opaque;
        let outcomes = par_map_outcomes(1, &[0u64], |_i, _item| -> Result<u64, String> {
            std::panic::panic_any(Opaque);
        });
        match &outcomes[0] {
            Outcome::Panicked(message) => {
                assert_eq!(message, "item 0: non-string panic payload");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn rethrow_path_is_built_on_the_outcome_engine() {
        // The rethrown message must match the Outcome::Panicked rendering
        // exactly (modulo the "nms-par: worker panicked on" prefix), since
        // both come from the same capture point.
        let items: Vec<u64> = (0..8).collect();
        let boom = |_i: usize, item: &u64| -> Result<u64, String> {
            if *item == 5 {
                panic!("shared capture path");
            }
            Ok(*item)
        };
        let rethrown = catch_unwind(AssertUnwindSafe(|| par_map(1, &items, boom))).unwrap_err();
        let rethrown = payload_message(rethrown.as_ref());
        let contained = match &par_map_outcomes(1, &items, boom)[5] {
            Outcome::Panicked(message) => message.clone(),
            other => panic!("expected Panicked, got {other:?}"),
        };
        assert_eq!(rethrown, format!("nms-par: worker panicked on {contained}"));
    }

    #[test]
    fn outcomes_recorded_tallies_every_item() {
        let items: Vec<u64> = (0..16).collect();
        let metrics = nms_obs::MetricsRegistry::new();
        let outcomes =
            par_map_outcomes_recorded(2, &items, &metrics, |_i, item: &u64| -> Result<u64, String> {
                if *item == 9 {
                    panic!("one bad shard");
                }
                Ok(*item)
            });
        assert_eq!(outcomes.iter().filter(|o| o.is_ok()).count(), 15);
        assert_eq!(metrics.counter("par_items"), 16);
        let per_worker = metrics.histogram("par_worker_items").unwrap();
        assert_eq!(per_worker.sum(), 16.0, "panicked items still count as work");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_parallel_matches_sequential(
            len in 0usize..50,
            threads in 1usize..9,
            chunk in 1usize..7,
            salt in 0u64..1000,
        ) {
            let items: Vec<u64> = (0..len as u64).map(|v| v.wrapping_mul(salt + 1)).collect();
            let f = |i: usize, item: &u64| -> Result<u64, String> {
                Ok(item.wrapping_add(i as u64))
            };
            let seq = par_map(1, &items, f).unwrap();
            let par = par_map_chunked(threads, chunk, &items, f).unwrap();
            prop_assert_eq!(seq, par);
        }
    }
}
