//! Community planning: sweep the net-metering reward rate `W` and the PV
//! penetration to see their effect on the grid's peak-to-average ratio —
//! the "what if my state changes its net-metering tariff?" question the
//! paper's introduction motivates.
//!
//! ```sh
//! cargo run --release --example community_planning -- --customers 30
//! ```

use std::error::Error;

use netmeter_sentinel::sim::sweeps::{sweep_pv_ownership, sweep_tariff};
use netmeter_sentinel::sim::Parallelism;
use netmeter_sentinel::sim::{render_table, PaperScenario};

fn main() -> Result<(), Box<dyn Error>> {
    let mut customers = 30usize;
    let mut seed = 123u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--customers" | "-n" => customers = args.next().ok_or("need value")?.parse()?,
            "--seed" | "-s" => seed = args.next().ok_or("need value")?.parse()?,
            other => return Err(format!("unknown flag {other:?}").into()),
        }
    }

    let scenario = PaperScenario::small(customers, seed);

    // --- Sweep 1: the net-metering reward divisor W. ---
    println!("sweep 1: net-metering reward rate (W) at fixed PV penetration\n");
    let points = sweep_tariff(&scenario, &[1.0, 1.25, 1.5, 2.0, 3.0], &Parallelism::SEQUENTIAL)?;
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("W = {}", p.parameter),
                format!("{:.4}", p.par),
                format!("{:.1} kWh", p.energy_sold),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["tariff", "grid PAR", "energy sold back"], &rows)
    );

    // --- Sweep 2: PV penetration. ---
    println!("\nsweep 2: PV ownership at the default tariff (W = 1.5)\n");
    let points = sweep_pv_ownership(&scenario, &[0.0, 0.25, 0.5, 0.75, 1.0], &Parallelism::SEQUENTIAL)?;
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.parameter * 100.0),
                format!("{:.4}", p.par),
                format!("{:.1} kWh", p.midday_draw),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["PV ownership", "grid PAR", "midday grid draw"], &rows)
    );
    println!("\nHigher PV penetration hollows out the midday demand — exactly the");
    println!("effect a detector must model before it can trust its PAR baseline.");
    Ok(())
}
