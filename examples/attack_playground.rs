//! Attack playground: measure how each pricing-attack class distorts the
//! community load shape and the customers' bills.
//!
//! ```sh
//! cargo run --release --example attack_playground -- --customers 30
//! ```

use std::error::Error;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use netmeter_sentinel::attack::{AttackImpact, CompromiseSet, PriceAttack};
use netmeter_sentinel::pricing::BillingEngine;
use netmeter_sentinel::sim::{render_table, Market, PaperScenario};

fn main() -> Result<(), Box<dyn Error>> {
    let mut customers = 30usize;
    let mut seed = 99u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--customers" | "-n" => customers = args.next().ok_or("need value")?.parse()?,
            "--seed" | "-s" => seed = args.next().ok_or("need value")?.parse()?,
            other => return Err(format!("unknown flag {other:?}").into()),
        }
    }

    let scenario = PaperScenario::small(customers, seed);
    let market = Market::new(&scenario)?;
    let generator = scenario.generator();
    let weather = scenario.weather_factors(1);
    let community = generator.community_for_day(0, weather[0]);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let clean = market.clear_day(&community, 2, &mut rng)?;
    let billing = BillingEngine::new(clean.price.clone(), scenario.tariff);
    let clean_bill = billing.total_revenue(&clean.response.schedule)?;
    println!(
        "clean day: PAR {:.4}, community bill {:.2}\n",
        clean.response.par, clean_bill
    );
    drop(billing);

    let attacks: Vec<(&str, PriceAttack)> = vec![
        (
            "zero 16:00-18:00 (paper)",
            PriceAttack::zero_window(16.0, 18.0)?,
        ),
        ("zero 02:00-04:00", PriceAttack::zero_window(2.0, 4.0)?),
        (
            "half-price evening",
            PriceAttack::scale_window(17.0, 21.0, 0.5)?,
        ),
        ("double everything", PriceAttack::scale_all(2.0)?),
        ("invert around mean", PriceAttack::InvertAroundMean),
    ];

    // Every meter is compromised in this playground.
    let all_hacked: CompromiseSet = (0..community.len())
        .map(netmeter_sentinel::types::MeterId::new)
        .collect();

    let mut rows = Vec::new();
    for (label, attack) in &attacks {
        let manipulated = attack.apply(&clean.price);
        // The whole community believes the manipulated price…
        let mut attacked_rng = ChaCha8Rng::seed_from_u64(seed);
        let attacked = market
            .truth_model()
            .predict(&community, &manipulated, &mut attacked_rng)?;
        // …but is billed at the real one.
        let impact = AttackImpact::assess(
            &clean.response.schedule,
            &attacked.schedule,
            &clean.price,
            scenario.tariff,
            &all_hacked,
        )?;
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", impact.attacked_par),
            format!("{:+.2}%", impact.par_increase * 100.0),
            format!("{:+.2}%", impact.peak_increase * 100.0),
            format!("{:+.2}", impact.community_bill_change.value()),
            if impact.is_par_attack(0.1) {
                "PAR"
            } else {
                "-"
            }
            .into(),
        ]);
    }

    println!(
        "{}",
        render_table(
            &["attack", "PAR", "ΔPAR", "Δpeak", "Δbill ($)", "class"],
            &rows
        )
    );
    println!("(every meter compromised; bills are computed at the true price)");
    let _ = clean_bill;
    Ok(())
}
