//! Long-term monitoring demo: watch the POMDP detector's belief evolve as
//! an attacker compromises the fleet over two days, and compare the
//! net-metering-aware detector against the naive one slot by slot.
//!
//! ```sh
//! cargo run --release --example long_term_monitoring -- --customers 60
//! ```

use std::error::Error;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use netmeter_sentinel::core::{DetectorMode, FrameworkConfig};
use netmeter_sentinel::sim::experiments::paper_timeline;
use netmeter_sentinel::sim::{run_long_term_detection, LongTermRunConfig, PaperScenario};

fn main() -> Result<(), Box<dyn Error>> {
    let mut customers = 60usize;
    let mut seed = 7u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--customers" | "-n" => customers = args.next().ok_or("need value")?.parse()?,
            "--seed" | "-s" => seed = args.next().ok_or("need value")?.parse()?,
            other => return Err(format!("unknown flag {other:?}").into()),
        }
    }
    let scenario = PaperScenario::small(customers, seed);

    println!("48-hour monitoring, {} customers, seed {seed}", customers);
    println!(
        "attack timeline: {:?}\n",
        paper_timeline(customers).events()
    );

    let mut results = Vec::new();
    for mode in [
        DetectorMode::NetMeteringAware,
        DetectorMode::IgnoreNetMetering,
    ] {
        let config = LongTermRunConfig {
            detection_days: 2,
            detector: Some(FrameworkConfig::new(mode, 24)),
            timeline: paper_timeline(customers),
            buckets: 6,
            bucket_fraction_step: 0.1,
            labor_per_fix: 10.0,
            labor_per_meter: 1.0,
            faults: None,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xf1906);
        let result = run_long_term_detection(&scenario, &config, &mut rng)?;
        println!(
            "{}: accuracy {:.1}%, {} fixes (slots {:?}), labor {:.0}, 48h PAR {:.4}",
            mode.label(),
            result.accuracy.accuracy().unwrap_or(0.0) * 100.0,
            result.labor.fixes(),
            result.fixes_at,
            result.labor.total_cost(),
            result.par
        );
        results.push((mode, result));
    }

    // Slot-by-slot trace.
    println!("\nslot | true | aware obs | naive obs | events");
    let (_, aware) = &results[0];
    let (_, naive) = &results[1];
    let timeline = paper_timeline(customers);
    for slot in 0..aware.true_buckets.len() {
        let event: String = timeline
            .events()
            .iter()
            .filter(|&&(s, _)| s == slot)
            .map(|&(_, n)| format!("+{n} hacked"))
            .collect::<Vec<_>>()
            .join(" ");
        let aware_fix = if aware.fixes_at.contains(&slot) {
            " [aware FIX]"
        } else {
            ""
        };
        let naive_fix = if naive.fixes_at.contains(&slot) {
            " [naive FIX]"
        } else {
            ""
        };
        println!(
            "{slot:4} |  {}   |     {}     |     {}     | {event}{aware_fix}{naive_fix}",
            aware.true_buckets[slot],
            aware.observed_buckets.get(slot).copied().unwrap_or(0),
            naive.observed_buckets.get(slot).copied().unwrap_or(0),
        );
    }
    Ok(())
}
