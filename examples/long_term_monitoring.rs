//! Long-term monitoring demo: watch the POMDP detector's belief evolve as
//! an attacker compromises the fleet over two days, and compare the
//! net-metering-aware detector against the naive one slot by slot.
//!
//! ```sh
//! cargo run --release --example long_term_monitoring -- --customers 60
//! ```
//!
//! `--threads <n>` runs the per-day equilibrium solves with `n` Jacobi
//! workers (clamped to the host's cores; results are bit-identical to the
//! sequential default).
//!
//! With `--journal <path>` the run goes through the crash-safe supervised
//! runner: each completed day is checkpointed to the journal, and a rerun
//! with the same journal resumes instead of recomputing. `--kill-after <k>`
//! simulates a crash by stopping after `k` days — rerun with the same
//! `--journal` to watch it resume from the checkpoint:
//!
//! ```sh
//! cargo run --release --example long_term_monitoring -- \
//!     --journal /tmp/run.jsonl --kill-after 1   # "crashes" after day 1
//! cargo run --release --example long_term_monitoring -- \
//!     --journal /tmp/run.jsonl                  # resumes day 2, finishes
//! ```
//!
//! Observability: `--trace <path>` streams structured JSONL events (phase
//! timings, solver convergence, sanitize/quarantine transitions) and
//! `--metrics <path>` writes a Prometheus-style exposition snapshot at the
//! end. Both are telemetry-only — the run's results are bit-identical with
//! or without them:
//!
//! ```sh
//! cargo run --release --example long_term_monitoring -- \
//!     --trace /tmp/run-trace.jsonl --metrics /tmp/run-metrics.prom
//! ```
//!
//! `--profile <path>` turns on the hierarchical span profiler: the run's
//! phase tree (training, day close, clearing, prediction, game solve, DP,
//! CE, journal appends) is written as an indented wall-time report to
//! `<path>` and as collapsed flamegraph stacks to `<path>.folded`.
//! `--serve <addr>` (port 0 picks a free port) exposes `/metrics`,
//! `/health`, and `/trace/tail` over HTTP for the duration of the run,
//! republished after every sequential checkpoint.

use std::error::Error;
use std::path::PathBuf;
use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use netmeter_sentinel::core::{DetectorMode, FrameworkConfig};
use netmeter_sentinel::obs::{
    JsonlTrace, MetricsRegistry, NoopRecorder, Recorder, SpanRecorder, Tee,
};
use netmeter_sentinel::serve::{TelemetryServer, TraceTail};
use netmeter_sentinel::sim::experiments::paper_timeline;
use netmeter_sentinel::sim::{
    run_long_term_detection_recorded, LongTermRunConfig, LongTermRunResult, PaperScenario,
    Parallelism, SupervisedRun,
};
use netmeter_sentinel::types::{FleetHealth, StorageFaultCounts};

fn main() -> Result<(), Box<dyn Error>> {
    let mut customers = 60usize;
    let mut seed = 7u64;
    let mut threads = 1usize;
    let mut journal: Option<PathBuf> = None;
    let mut kill_after: Option<usize> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut profile_path: Option<PathBuf> = None;
    let mut serve_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--customers" | "-n" => customers = args.next().ok_or("need value")?.parse()?,
            "--seed" | "-s" => seed = args.next().ok_or("need value")?.parse()?,
            "--threads" | "-p" => threads = args.next().ok_or("need value")?.parse()?,
            "--journal" | "-j" => journal = Some(args.next().ok_or("need value")?.into()),
            "--kill-after" | "-k" => kill_after = Some(args.next().ok_or("need value")?.parse()?),
            "--trace" | "-t" => trace_path = Some(args.next().ok_or("need value")?.into()),
            "--metrics" | "-m" => metrics_path = Some(args.next().ok_or("need value")?.into()),
            "--profile" => profile_path = Some(args.next().ok_or("need value")?.into()),
            "--serve" => serve_addr = Some(args.next().ok_or("need value")?),
            other => return Err(format!("unknown flag {other:?}").into()),
        }
    }
    if kill_after.is_some() && journal.is_none() {
        return Err("--kill-after only makes sense with --journal".into());
    }
    let scenario = PaperScenario::small(customers, seed);

    // Assemble the recorder: a no-op unless --trace/--metrics/--profile/
    // --serve asked for sinks. Telemetry never feeds back, so every
    // assembly produces the same results.
    let server = match &serve_addr {
        Some(addr) => Some(TelemetryServer::bind(addr.as_str())?),
        None => None,
    };
    let publisher = server.as_ref().map(TelemetryServer::publisher);
    if let Some(server) = &server {
        println!(
            "telemetry live at http://{0}/metrics, /health, /trace/tail",
            server.local_addr()
        );
    }
    // The server needs a registry to expose even when --metrics is absent.
    let metrics = if metrics_path.is_some() || server.is_some() {
        Some(MetricsRegistry::new())
    } else {
        None
    };
    let spans = profile_path.as_ref().map(|_| Arc::new(SpanRecorder::new()));
    let mut sinks: Vec<Arc<dyn Recorder>> = Vec::new();
    if let Some(path) = &trace_path {
        sinks.push(Arc::new(JsonlTrace::create(path)?));
    }
    if let Some(registry) = &metrics {
        sinks.push(Arc::new(registry.clone()));
    }
    if let Some(spans) = &spans {
        sinks.push(Arc::clone(spans) as Arc<dyn Recorder>);
    }
    if let Some(publisher) = &publisher {
        sinks.push(Arc::new(TraceTail::new(publisher.clone())));
    }
    let recorder: Arc<dyn Recorder> = match sinks.len() {
        0 => Arc::new(NoopRecorder),
        1 => sinks.remove(0),
        _ => Arc::new(Tee::new(sinks)),
    };
    // Republishes the served snapshots; called only from this sequential
    // main thread, at checkpoints.
    let publish = |day: Option<usize>| {
        if let (Some(publisher), Some(registry)) = (&publisher, &metrics) {
            publisher.publish_metrics(registry);
            publisher.publish_health(day, &FleetHealth::default(), StorageFaultCounts::default());
        }
    };

    println!("48-hour monitoring, {} customers, seed {seed}", customers);
    println!(
        "attack timeline: {:?}\n",
        paper_timeline(customers).events()
    );

    let mut results = Vec::new();
    for mode in [
        DetectorMode::NetMeteringAware,
        DetectorMode::IgnoreNetMetering,
    ] {
        let config = LongTermRunConfig {
            detection_days: 2,
            detector: Some(FrameworkConfig::new(mode, 24)),
            timeline: paper_timeline(customers),
            buckets: 6,
            bucket_fraction_step: 0.1,
            labor_per_fix: 10.0,
            labor_per_meter: 1.0,
            faults: None,
            sanitize: Default::default(),
            retry: Default::default(),
            budget: Default::default(),
            quarantine: Default::default(),
            parallelism: Parallelism::new(threads),
            clearing_iterations: 2,
        };
        let result: LongTermRunResult = match &journal {
            None => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xf1906);
                run_long_term_detection_recorded(&scenario, &config, &mut rng, recorder.as_ref())?
            }
            Some(base) => {
                // One journal per detector mode, derived from the flag.
                let tag = match mode {
                    DetectorMode::NetMeteringAware => "aware",
                    DetectorMode::IgnoreNetMetering => "naive",
                };
                let path = base.with_extension(format!("{tag}.jsonl"));
                let mut run = SupervisedRun::new_recorded(
                    &scenario,
                    &config,
                    seed ^ 0xf1906,
                    &path,
                    Arc::clone(&recorder),
                )?;
                if run.completed_days() > 0 {
                    println!(
                        "[{}] resumed from {} ({} day(s) checkpointed)",
                        mode.label(),
                        path.display(),
                        run.completed_days()
                    );
                }
                while !run.is_finished() {
                    if kill_after.is_some_and(|k| run.completed_days() >= k) {
                        println!(
                            "[{}] simulated crash after day {} — rerun with the same \
                             --journal to resume",
                            mode.label(),
                            run.completed_days()
                        );
                        return Ok(());
                    }
                    run.step_day()?;
                    publish(Some(run.completed_days()));
                    println!(
                        "[{}] day {} checkpointed to {}",
                        mode.label(),
                        run.completed_days(),
                        path.display()
                    );
                }
                run.finish()?
            }
        };
        println!(
            "{}: accuracy {:.1}%, {} fixes (slots {:?}), labor {:.0}, 48h PAR {:.4}",
            mode.label(),
            result.accuracy.accuracy().unwrap_or(0.0) * 100.0,
            result.labor.fixes(),
            result.fixes_at,
            result.labor.total_cost(),
            result.par
        );
        publish(None);
        results.push((mode, result));
    }

    // Slot-by-slot trace.
    println!("\nslot | true | aware obs | naive obs | events");
    let (_, aware) = &results[0];
    let (_, naive) = &results[1];
    let timeline = paper_timeline(customers);
    for slot in 0..aware.true_buckets.len() {
        let event: String = timeline
            .events()
            .iter()
            .filter(|&&(s, _)| s == slot)
            .map(|&(_, n)| format!("+{n} hacked"))
            .collect::<Vec<_>>()
            .join(" ");
        let aware_fix = if aware.fixes_at.contains(&slot) {
            " [aware FIX]"
        } else {
            ""
        };
        let naive_fix = if naive.fixes_at.contains(&slot) {
            " [naive FIX]"
        } else {
            ""
        };
        println!(
            "{slot:4} |  {}   |     {}     |     {}     | {event}{aware_fix}{naive_fix}",
            aware.true_buckets[slot],
            aware.observed_buckets.get(slot).copied().unwrap_or(0),
            naive.observed_buckets.get(slot).copied().unwrap_or(0),
        );
    }

    if let Some(path) = &trace_path {
        println!("\ntrace written to {}", path.display());
    }
    if let (Some(path), Some(registry)) = (&metrics_path, &metrics) {
        registry.write_prometheus(path)?;
        println!("metrics written to {}", path.display());
    }
    if let (Some(path), Some(spans)) = (&profile_path, &spans) {
        let profile = spans.profile();
        std::fs::write(path, profile.report())?;
        let folded = {
            let mut folded = path.as_os_str().to_owned();
            folded.push(".folded");
            PathBuf::from(folded)
        };
        std::fs::write(&folded, profile.collapsed())?;
        println!(
            "span profile written to {} (flamegraph stacks: {})",
            path.display(),
            folded.display()
        );
    }
    Ok(())
}
