//! Trace dump: offline analysis of a sealed JSONL trace file.
//!
//! Reads a trace written by `JsonlTrace` (e.g. `long_term_monitoring
//! --trace run.jsonl`), verifies every line's seal, and prints an
//! event-kind histogram plus a per-day timeline of what the run did.
//! Corruption is not papered over: a torn or tampered line surfaces as the
//! typed [`TraceError`] it is, with its 1-based line number, and the
//! process exits non-zero so scripts can gate on trace integrity.
//!
//! ```sh
//! cargo run --release --example long_term_monitoring -- --trace /tmp/run.jsonl
//! cargo run --release --example trace_dump -- /tmp/run.jsonl
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use netmeter_sentinel::obs::{read_trace, TraceError, TraceEvent};

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_dump <trace.jsonl>");
        return ExitCode::from(2);
    };

    let events = match read_trace(&path) {
        Ok(events) => events,
        Err(err) => {
            // The typed error is the diagnosis: which line, what kind of
            // damage, and (for I/O) the underlying OS error.
            match &err {
                TraceError::Io(io) => eprintln!("cannot read {path}: {io}"),
                TraceError::Corrupt { line, detail } => {
                    eprintln!("{path} is corrupt at line {line}: {detail}");
                }
                TraceError::MissingHeader { detail } => {
                    eprintln!("{path} has no intact trace header: {detail}");
                }
                other => eprintln!("{path}: {other}"),
            }
            return ExitCode::FAILURE;
        }
    };

    println!("{path}: {} sealed events", events.len());

    // Event-kind histogram, widest first.
    let mut kinds: BTreeMap<&str, usize> = BTreeMap::new();
    for event in &events {
        *kinds.entry(event.kind.as_str()).or_insert(0) += 1;
    }
    let mut by_count: Vec<(&str, usize)> = kinds.into_iter().collect();
    by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let width = by_count.iter().map(|(_, n)| *n).max().unwrap_or(1);
    println!("\nevent kinds:");
    for (kind, count) in &by_count {
        let bar = "#".repeat((count * 40).div_ceil(width.max(1)));
        println!("{kind:>24} {count:>6}  {bar}");
    }

    // Per-day timeline: events that carry a day, in day order.
    let mut days: BTreeMap<usize, Vec<&TraceEvent>> = BTreeMap::new();
    let mut dayless = 0usize;
    for event in &events {
        match event.day {
            Some(day) => days.entry(day).or_default().push(event),
            None => dayless += 1,
        }
    }
    if !days.is_empty() {
        println!("\nper-day timeline:");
        for (day, day_events) in &days {
            let mut day_kinds: BTreeMap<&str, usize> = BTreeMap::new();
            for event in day_events {
                *day_kinds.entry(event.kind.as_str()).or_insert(0) += 1;
            }
            let summary: Vec<String> = day_kinds
                .iter()
                .map(|(kind, count)| format!("{kind}×{count}"))
                .collect();
            println!("  day {day:>3}: {:>5} events  [{}]", day_events.len(), summary.join(", "));
        }
    }
    if dayless > 0 {
        println!("  (plus {dayless} events with no day attribution)");
    }
    ExitCode::SUCCESS
}
