//! Exhaustive crash-point sweep over the durable pipeline.
//!
//! Runs the supervised detection pipeline (journal + CSV exports) once on
//! a clean fault-injecting in-memory VFS to count its mutating I/O
//! operations, then replays it once per operation index with a kill
//! injected there: the in-flight write is torn, the run aborts, the VFS is
//! revived, and the resumed pipeline must converge to bit-identical
//! results and on-disk bytes. The sweep's wall time is merged into
//! `BENCH_results.json` under `crash_sweep/sweep`.
//!
//! ```sh
//! cargo run --release --example crash_sweep -- --customers 6 --days 3
//! ```

use std::error::Error;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use netmeter_sentinel::attack::{AttackTimeline, PriceAttack};
use netmeter_sentinel::sim::export::{
    export_health_timeline_to_path, export_long_term_to_path, export_quarantine_events_to_path,
};
use netmeter_sentinel::sim::{
    LongTermRunConfig, LongTermRunResult, PaperScenario, SupervisedOptions, SupervisedRun,
};
use netmeter_sentinel::types::RetryPolicy;
use netmeter_sentinel::vfs::{FaultVfs, IoFaultPlan, StoragePolicy};
use nms_bench::{host_cores, record_bench_results, BenchRecord};

const JOURNAL: &str = "sweep/run.jsonl";
const LONG_TERM_CSV: &str = "sweep/long_term.csv";
const HEALTH_CSV: &str = "sweep/health_timeline.csv";
const QUARANTINE_CSV: &str = "sweep/quarantine_events.csv";

fn pipeline(
    vfs: &FaultVfs,
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    seed: u64,
) -> Result<LongTermRunResult, String> {
    let options = SupervisedOptions {
        vfs: Arc::new(vfs.clone()),
        ..SupervisedOptions::default()
    };
    let run = SupervisedRun::with_options(scenario, config, seed, Path::new(JOURNAL), options)
        .map_err(|err| format!("supervise: {err}"))?;
    let result = run.run().map_err(|err| format!("run: {err}"))?;
    let policy = StoragePolicy::no_retries();
    export_long_term_to_path(vfs, Path::new(LONG_TERM_CSV), &result, &policy)
        .map_err(|err| format!("export long_term: {err}"))?;
    export_health_timeline_to_path(vfs, Path::new(HEALTH_CSV), &result, &policy)
        .map_err(|err| format!("export health: {err}"))?;
    export_quarantine_events_to_path(vfs, Path::new(QUARANTINE_CSV), &result, &policy)
        .map_err(|err| format!("export quarantine: {err}"))?;
    Ok(result)
}

fn normalized(mut result: LongTermRunResult) -> String {
    result.health.storage = Default::default();
    format!("{result:?}")
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut customers = 6usize;
    let mut days = 3usize;
    let mut seed = 23u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--customers" | "-n" => customers = args.next().ok_or("need value")?.parse()?,
            "--days" | "-d" => days = args.next().ok_or("need value")?.parse()?,
            "--seed" | "-s" => seed = args.next().ok_or("need value")?.parse()?,
            other => return Err(format!("unknown flag {other:?}").into()),
        }
    }

    let mut scenario = PaperScenario::small(customers, seed);
    scenario.training_days = 4;
    let config = LongTermRunConfig {
        detection_days: days,
        detector: None,
        timeline: AttackTimeline::new(
            vec![(4, 2), (20, 2)],
            PriceAttack::zero_window(16.0, 18.0)?,
        )?,
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults: None,
        sanitize: Default::default(),
        retry: RetryPolicy::default(),
        budget: Default::default(),
        quarantine: Default::default(),
        parallelism: Default::default(),
        clearing_iterations: 2,
    };

    let started = Instant::now();
    let golden_vfs = FaultVfs::new(IoFaultPlan::none());
    let golden = pipeline(&golden_vfs, &scenario, &config, seed)
        .map_err(|err| format!("clean run failed: {err}"))?;
    let operations = golden_vfs.ops();
    let golden_dump = golden_vfs.dump();
    let golden_form = normalized(golden);
    println!(
        "crash sweep: {customers} homes, {days} detection days, {operations} mutating I/O ops"
    );

    for kill_at in 0..operations {
        let vfs = FaultVfs::new(IoFaultPlan::kill_at(kill_at));
        if pipeline(&vfs, &scenario, &config, seed).is_ok() || !vfs.is_killed() {
            return Err(format!("kill point {kill_at}: pipeline survived its kill").into());
        }
        vfs.revive();
        let resumed = pipeline(&vfs, &scenario, &config, seed)
            .map_err(|err| format!("kill point {kill_at}: resume failed: {err}"))?;
        if normalized(resumed) != golden_form {
            return Err(format!("kill point {kill_at}: resumed result diverged").into());
        }
        let dump = vfs.dump();
        if dump != golden_dump {
            return Err(format!("kill point {kill_at}: surviving bytes diverged").into());
        }
    }
    let wall_secs = started.elapsed().as_secs_f64();
    println!(
        "all {operations} kill points resumed bit-identically in {wall_secs:.2}s"
    );

    record_bench_results(&[BenchRecord {
        target: "crash_sweep/sweep".into(),
        wall_secs,
        customers,
        seed,
        threads: 1,
        host_cores: host_cores(),
        solver_rounds: 0,
        cache_hits: 0,
        cache_misses: 0,
        note: format!("{operations} kill points x 2 pipeline runs each, plus 1 golden run"),
        speedup: 0.0,
    }])?;
    println!("recorded crash_sweep/sweep into BENCH_results.json");
    Ok(())
}
