use netmeter_sentinel::sim::{experiments, PaperScenario};
fn main() {
    for vol in [0.35f64, 0.28] {
        for seed in [1u64, 2, 7, 11, 2015] {
            let mut s = PaperScenario::small(100, seed);
            s.weather.volatility = vol;
            let fig6 = experiments::run_fig6(&s).unwrap();
            println!(
                "vol {vol} seed {seed}: aware {:.1}% naive {:.1}%",
                fig6.aware_accuracy * 100.0,
                fig6.naive_accuracy * 100.0
            );
        }
    }
}
