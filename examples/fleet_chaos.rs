//! Fleet chaos demo: a supervised multi-community fleet with failures
//! injected into chosen shards.
//!
//! Drives K communities as isolated shards on in-memory fault-injecting
//! disks, makes one shard panic, kills another shard's storage mid-append
//! (reviving it at resume), and wedges a third past its day-close
//! deadline — then prints the resulting `FleetHealth` ledger and asserts
//! the supervision contract: the fleet never panics, every injected
//! failure lands on its documented ladder rung, and the untouched shards
//! finish healthy with full results.
//!
//! ```sh
//! cargo run --release --example fleet_chaos -- --shards 4 --days 3 \
//!     --panic-shard 1 --storage-shard 2 --deadline-shard 3
//! ```
//!
//! Pass a negative shard index (or one `>= --shards`) to disable that
//! chaos kind; `--threads 0` uses one worker per shard. `--serve ADDR`
//! (e.g. `--serve 127.0.0.1:9600`, port 0 picks a free port) additionally
//! runs the fleet behind a live telemetry plane: `/metrics`, `/health`,
//! and `/trace/tail` are scrapeable while the chaos unfolds, and the demo
//! self-scrapes at the end to prove the served snapshots match the run.

use std::error::Error;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use netmeter_sentinel::attack::{AttackTimeline, PriceAttack};
use netmeter_sentinel::fleet::{
    run_fleet, DayCloseObserver, FleetConfig, FleetLadder, FleetOptions, ShardSpec,
};
use netmeter_sentinel::obs::names::fleet as fleet_names;
use netmeter_sentinel::serve::{SharedRegistry, TelemetryServer};
use netmeter_sentinel::sim::{
    LongTermRunConfig, PaperScenario, Parallelism, SupervisedOptions, SupervisedRun,
};
use netmeter_sentinel::types::{
    BudgetClock, FleetHealth, ShardStage, SolveBudget, StorageFaultCounts,
};
use netmeter_sentinel::vfs::{FaultVfs, IoFaultPlan};

const JOURNAL: &str = "fleet/shard.jsonl";

struct Cli {
    shards: usize,
    days: usize,
    customers: usize,
    seed: u64,
    threads: usize,
    panic_shard: Option<usize>,
    storage_shard: Option<usize>,
    deadline_shard: Option<usize>,
    serve: Option<String>,
}

fn parse_cli() -> Result<Cli, Box<dyn Error>> {
    let mut cli = Cli {
        shards: 4,
        days: 3,
        customers: 8,
        seed: 23,
        threads: 0,
        panic_shard: Some(1),
        storage_shard: Some(2),
        deadline_shard: Some(3),
        serve: None,
    };
    let mut args = std::env::args().skip(1);
    let shard_flag = |value: String| -> Result<Option<usize>, Box<dyn Error>> {
        let index: i64 = value.parse()?;
        Ok(usize::try_from(index).ok())
    };
    while let Some(arg) = args.next() {
        let mut value = || args.next().ok_or("need value");
        match arg.as_str() {
            "--shards" | "-k" => cli.shards = value()?.parse()?,
            "--days" | "-d" => cli.days = value()?.parse()?,
            "--customers" | "-n" => cli.customers = value()?.parse()?,
            "--seed" | "-s" => cli.seed = value()?.parse()?,
            "--threads" | "-t" => cli.threads = value()?.parse()?,
            "--panic-shard" => cli.panic_shard = shard_flag(value()?)?,
            "--storage-shard" => cli.storage_shard = shard_flag(value()?)?,
            "--deadline-shard" => cli.deadline_shard = shard_flag(value()?)?,
            "--serve" => cli.serve = Some(value()?),
            other => return Err(format!("unknown flag {other:?}").into()),
        }
    }
    if cli.shards == 0 || cli.days == 0 {
        return Err("need at least one shard and one day".into());
    }
    let clamp = |shard: Option<usize>| shard.filter(|&index| index < cli.shards);
    cli.panic_shard = clamp(cli.panic_shard);
    cli.storage_shard = clamp(cli.storage_shard);
    cli.deadline_shard = clamp(cli.deadline_shard);
    Ok(cli)
}

fn community_scenario(cli: &Cli, index: usize) -> PaperScenario {
    let mut scenario = PaperScenario::small(cli.customers, cli.seed.wrapping_add(17 + index as u64));
    scenario.training_days = 3;
    scenario
}

fn run_config(cli: &Cli) -> LongTermRunConfig {
    LongTermRunConfig {
        detection_days: cli.days,
        detector: None,
        timeline: AttackTimeline::new(
            vec![(4, 2), (20, 2)],
            PriceAttack::zero_window(16.0, 18.0).expect("window"),
        )
        .expect("timeline"),
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults: None,
        sanitize: Default::default(),
        retry: Default::default(),
        budget: SolveBudget::unlimited(),
        quarantine: Default::default(),
        parallelism: Default::default(),
        clearing_iterations: 2,
    }
}

/// The first mutating I/O op of the last day's journal append for shard
/// `index` — the deterministic point where the storage-chaos shard's disk
/// dies.
fn kill_point(cli: &Cli, index: usize) -> Result<u64, Box<dyn Error>> {
    let vfs = FaultVfs::new(IoFaultPlan::none());
    let options = SupervisedOptions {
        vfs: Arc::new(vfs.clone()),
        ..SupervisedOptions::default()
    };
    let mut run = SupervisedRun::with_options(
        &community_scenario(cli, index),
        &run_config(cli),
        netmeter_sentinel::fleet::shard_seed(cli.seed, index),
        JOURNAL.as_ref(),
        options,
    )?;
    for _ in 1..cli.days {
        run.step_day()?;
    }
    Ok(vfs.ops())
}

fn main() -> Result<(), Box<dyn Error>> {
    let cli = parse_cli()?;

    let storage_kill = match cli.storage_shard {
        Some(index) => Some((index, kill_point(&cli, index)?)),
        None => None,
    };
    let shard_vfs: Vec<FaultVfs> = (0..cli.shards)
        .map(|index| {
            FaultVfs::new(match storage_kill {
                Some((shard, at)) if shard == index => IoFaultPlan::kill_at(at),
                _ => IoFaultPlan::none(),
            })
        })
        .collect();

    let specs: Vec<ShardSpec> = (0..cli.shards)
        .map(|index| {
            ShardSpec::derived(
                format!("community-{index}"),
                community_scenario(&cli, index),
                run_config(&cli),
                cli.seed,
                index,
                JOURNAL,
            )
        })
        .collect();

    let metrics = SharedRegistry::new();
    let server = match &cli.serve {
        Some(addr) => Some(TelemetryServer::bind(addr.as_str())?),
        None => None,
    };
    let publisher = server.as_ref().map(TelemetryServer::publisher);
    if let Some(server) = &server {
        println!(
            "telemetry live at http://{0}/metrics, /health, /trace/tail",
            server.local_addr()
        );
    }
    let panic_fired = Arc::new(AtomicBool::new(false));
    let hook_fired = Arc::clone(&panic_fired);
    let panic_shard = cli.panic_shard;
    let deadline_shard = cli.deadline_shard;
    let revive = cli
        .storage_shard
        .map(|index| (index, shard_vfs[index].clone()));

    let config = FleetConfig {
        ladder: FleetLadder {
            max_day_retries: 2,
            retry_backoff_ms: 1,
            max_resumes: 2,
            // A single-day run must already trip the breaker on its one
            // (and only) breach for the demo to show a quarantine.
            max_deadline_breaches: if cli.days >= 2 { 1 } else { 0 },
        },
        day_deadline: SolveBudget {
            max_iterations: None,
            max_wall_secs: Some(3600.0),
        },
        parallelism: if cli.threads == 0 {
            Parallelism::new(cli.shards)
        } else {
            Parallelism::new(cli.threads)
        },
    };
    let shard_options: Vec<SupervisedOptions> = shard_vfs
        .iter()
        .map(|vfs| SupervisedOptions {
            vfs: Arc::new(vfs.clone()),
            ..SupervisedOptions::default()
        })
        .collect();
    // Snapshot publication: after every day's sequential ladder, render
    // the striped registry and the fleet/storage health into the server's
    // snapshot strings. Workers never touch the server, and the server
    // never touches the registries — scrapes are monotone by design.
    let on_day_close: Option<DayCloseObserver> = publisher.clone().map(|publisher| {
        let registry = metrics.clone();
        let ledgers: Vec<_> = shard_options
            .iter()
            .map(|options| options.storage.clone())
            .collect();
        Arc::new(move |day: usize, health: &FleetHealth| {
            let mut storage = StorageFaultCounts::default();
            for ledger in &ledgers {
                storage.merge(&ledger.snapshot());
            }
            publisher.publish_shared(&registry);
            publisher.publish_health(Some(day), health, storage);
        }) as DayCloseObserver
    });
    let options = FleetOptions {
        shard_options,
        recorder: Arc::new(metrics.clone()),
        on_day_close,
        day_hook: Some(Arc::new(move |shard, day| {
            if Some(shard) == panic_shard && day == 0 && !hook_fired.swap(true, Ordering::SeqCst)
            {
                panic!("chaos: injected panic in shard {shard} day {day}");
            }
        })),
        clock_for: Some(Arc::new(move |shard, _day, budget: SolveBudget| {
            if Some(shard) == deadline_shard {
                BudgetClock::with_elapsed(budget, 7200.0)
            } else {
                budget.start()
            }
        })),
        before_resume: Some(Arc::new(move |shard| {
            if let Some((index, vfs)) = &revive {
                if shard == *index {
                    vfs.revive();
                }
            }
        })),
    };

    let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_fleet(specs, &config, options)
    }))
    .map_err(|_| "contract violated: the fleet panicked")??;

    println!("== fleet of {} shards, {} detection days ==", cli.shards, cli.days);
    println!(
        "{:<6} {:<14} {:<12} {:>4} {:>7} {:>7} {:>8} {:>6}  last error",
        "shard", "community", "stage", "days", "retries", "resumes", "breaches", "floor"
    );
    for shard in &report.health.shards {
        println!(
            "{:<6} {:<14} {:<12} {:>4} {:>7} {:>7} {:>8} {:>6}  {}",
            shard.shard,
            shard.community,
            shard.stage,
            shard.days_completed,
            shard.day_retries,
            shard.resumes,
            shard.deadline_breaches,
            shard.suspect_floor_days,
            shard.last_error.as_deref().unwrap_or("-"),
        );
    }
    println!(
        "aggregate: healthy {} / quarantined {} / restarts {} / day retries {} / worst {}",
        report.health.healthy(),
        report.health.quarantined(),
        report.health.restarts(),
        report.health.day_retries(),
        report.health.worst_stage(),
    );
    println!(
        "metrics: days_closed {} panics_contained {} shard_restarts {} quarantines {}",
        metrics.counter(fleet_names::DAYS_CLOSED),
        metrics.counter(fleet_names::PANICS_CONTAINED),
        metrics.counter(fleet_names::SHARD_RESTARTS),
        metrics.counter(fleet_names::QUARANTINES),
    );

    // The supervision contract, enforced: chaos lands exactly on its rung.
    for shard in &report.health.shards {
        let index = shard.shard;
        let expected = if Some(index) == cli.deadline_shard {
            ShardStage::Quarantined
        } else if Some(index) == cli.panic_shard || Some(index) == cli.storage_shard {
            ShardStage::Resumed
        } else {
            ShardStage::Healthy
        };
        if shard.stage != expected {
            return Err(format!(
                "shard {index} ended {} but chaos demanded {expected}",
                shard.stage
            )
            .into());
        }
        let untouched = expected == ShardStage::Healthy;
        if untouched && report.shards[index].result.is_none() {
            return Err(format!("healthy shard {index} produced no result").into());
        }
        if untouched && shard.days_completed != cli.days {
            return Err(format!("healthy shard {index} closed {} days", shard.days_completed).into());
        }
    }
    if metrics.counter(fleet_names::PANICS_CONTAINED) == 0 && cli.panic_shard.is_some() {
        return Err("panic chaos requested but none was contained".into());
    }

    // Serve smoke: scrape our own endpoints and prove the served bytes
    // are exactly the published snapshots.
    if let (Some(server), Some(publisher)) = (&server, &publisher) {
        let addr = server.local_addr();
        let (status, body) = scrape(addr, "/metrics")?;
        if status != 200 {
            return Err(format!("/metrics answered {status}").into());
        }
        if body != publisher.metrics_text() {
            return Err("/metrics body diverged from the published snapshot".into());
        }
        if !body.contains("nms_fleet_days_closed") {
            return Err("/metrics exposition is missing the fleet counters".into());
        }
        let (status, health) = scrape(addr, "/health")?;
        if status != 200 || !health.contains("\"worst_stage\"") {
            return Err(format!("/health answered {status}: {health}").into());
        }
        println!(
            "serve smoke: /metrics ({} bytes) and /health ({} bytes) match the published snapshots",
            body.len(),
            health.len()
        );
    }
    println!("contract holds: every failure contained on its documented rung");
    Ok(())
}

/// A minimal `std::net` scraper: status code plus body.
fn scrape(addr: SocketAddr, target: &str) -> Result<(u16, String), Box<dyn Error>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(format!("GET {target} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or("no status code in response")?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    Ok((status, body))
}
