//! Quickstart: build a small smart home community, solve the scheduling
//! game under a time-of-use price, and inspect loads and bills.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::error::Error;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use netmeter_sentinel::pricing::{BillingEngine, NetMeteringTariff, PriceSignal};
use netmeter_sentinel::smarthome::{
    clear_sky_profile, Appliance, ApplianceKind, Battery, Community, Customer, PowerLevels,
    PvPanel, TaskSpec,
};
use netmeter_sentinel::solver::{GameConfig, GameEngine};
use netmeter_sentinel::types::{ApplianceId, CustomerId, Horizon, Kw, Kwh};

fn main() -> Result<(), Box<dyn Error>> {
    let horizon = Horizon::hourly_day();

    // --- Build four homes: an EV household, a PV+battery prosumer, a   ---
    // --- laundry-heavy home, and a minimal apartment.                  ---
    let customers = vec![
        Customer::builder(CustomerId::new(0), horizon)
            .appliance(Appliance::new(
                ApplianceId::new(0),
                ApplianceKind::ElectricVehicle,
                PowerLevels::stepped(Kw::new(3.3), 3)?,
                TaskSpec::new(Kwh::new(9.0), 18, 23)?,
            ))
            .appliance(Appliance::new(
                ApplianceId::new(1),
                ApplianceKind::Refrigerator,
                PowerLevels::on_off(Kw::new(0.25))?,
                TaskSpec::new(Kwh::new(2.0), 0, 23)?,
            ))
            .build()?,
        Customer::builder(CustomerId::new(1), horizon)
            .appliance(Appliance::new(
                ApplianceId::new(0),
                ApplianceKind::WaterHeater,
                PowerLevels::stepped(Kw::new(4.0), 4)?,
                TaskSpec::new(Kwh::new(4.0), 0, 23)?,
            ))
            .pv(PvPanel::new(
                Kw::new(4.0),
                clear_sky_profile(horizon, Kw::new(4.0)),
            )?)
            .battery(Battery::new(Kwh::new(8.0), Kwh::new(2.0))?)
            .build()?,
        Customer::builder(CustomerId::new(2), horizon)
            .appliance(Appliance::new(
                ApplianceId::new(0),
                ApplianceKind::WashingMachine,
                PowerLevels::on_off(Kw::new(1.0))?,
                TaskSpec::new(Kwh::new(1.5), 8, 20)?,
            ))
            .appliance(Appliance::new(
                ApplianceId::new(1),
                ApplianceKind::Dryer,
                PowerLevels::stepped(Kw::new(3.0), 2)?,
                TaskSpec::new(Kwh::new(2.5), 10, 22)?,
            ))
            .build()?,
        Customer::builder(CustomerId::new(3), horizon)
            .appliance(Appliance::new(
                ApplianceId::new(0),
                ApplianceKind::Lighting,
                PowerLevels::on_off(Kw::new(0.4))?,
                TaskSpec::new(Kwh::new(1.6), 17, 23)?,
            ))
            .build()?,
    ];

    let community = Community::new(horizon, customers)?;
    println!(
        "community: {} homes, {} can trade energy back, {:.1} of schedulable task energy",
        community.len(),
        community.trading_customers(),
        community.total_task_energy()
    );

    // --- Solve the net-metering scheduling game under a TOU price. ---
    let prices = PriceSignal::time_of_use(horizon, 0.06, 0.22)?;
    let tariff = NetMeteringTariff::default();
    let engine = GameEngine::new(&community, &prices, tariff, GameConfig::default())?;
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let outcome = engine.solve(&mut rng)?;
    println!(
        "game: {} rounds, converged = {}",
        outcome.rounds, outcome.converged
    );

    let schedule = outcome.schedule;
    let clock = horizon.clock();
    println!("\nhour   grid demand (kWh)");
    for h in 0..horizon.slots() {
        let demand = schedule.grid_demand()[h].max(0.0);
        let bar = "#".repeat((demand * 4.0).round() as usize);
        println!("{}  {demand:6.2}  {bar}", clock.label(h));
    }
    if let Some(par) = schedule.grid_par() {
        println!("\ngrid PAR: {par:.4}");
    }

    // --- Bill everyone. ---
    let engine = BillingEngine::new(prices, tariff);
    println!("\nbills:");
    for bill in engine.bill(&schedule)? {
        println!(
            "  {}: purchases {:.3}, net-metering credits {:.3}, net {:.3}",
            bill.customer,
            bill.purchases,
            bill.credits,
            bill.net()
        );
    }
    Ok(())
}
