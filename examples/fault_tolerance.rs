//! Robustness sweep: detection accuracy vs telemetry fault rate.
//!
//! Repeats the paper's 48-hour attack/detection run while a [`FaultPlan`]
//! corrupts the meter telemetry — dropped readings, NaN/garbage values,
//! stuck meters, clock skew, and meters that stop reporting — at growing
//! rates. Both detector modes run at every rate, so the output shows how
//! gracefully each degrades as its view of the grid rots.
//!
//! ```sh
//! cargo run --release --example fault_tolerance -- --customers 20 --csv out/
//! ```

use std::error::Error;

use netmeter_sentinel::sim::sweeps::sweep_fault_tolerance;
use netmeter_sentinel::sim::Parallelism;
use netmeter_sentinel::sim::{export, render_table, PaperScenario};

fn main() -> Result<(), Box<dyn Error>> {
    let mut customers = 20usize;
    let mut seed = 7u64;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--customers" | "-n" => customers = args.next().ok_or("need value")?.parse()?,
            "--seed" | "-s" => seed = args.next().ok_or("need value")?.parse()?,
            "--csv" => csv_dir = Some(args.next().ok_or("--csv needs a directory")?.into()),
            other => return Err(format!("unknown flag {other:?}").into()),
        }
    }

    let mut scenario = PaperScenario::small(customers, seed);
    scenario.training_days = 4;

    let rates = [0.0, 0.02, 0.05, 0.1, 0.2];
    println!(
        "fault-tolerance sweep: {customers} homes, 48 h detection, rates {rates:?}\n"
    );
    let points = sweep_fault_tolerance(&scenario, &rates, &Parallelism::SEQUENTIAL)?;

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.fault_rate * 100.0),
                format!("{:.2}%", p.aware_accuracy * 100.0),
                format!("{:.2}%", p.naive_accuracy * 100.0),
                format!("{}", p.faults_injected),
                format!("{}", p.slots_imputed),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "fault rate",
                "aware accuracy",
                "naive accuracy",
                "faults injected",
                "slots imputed",
            ],
            &rows
        )
    );

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir)?;
        let file = std::fs::File::create(dir.join("fault_tolerance.csv"))?;
        export::export_fault_tolerance(file, &points)?;
        println!("wrote {}", dir.join("fault_tolerance.csv").display());
    }
    Ok(())
}
