//! Regenerates every figure and table of the paper's evaluation (§5).
//!
//! ```sh
//! # Quick run on a scaled-down community:
//! cargo run --release --example paper_experiments
//!
//! # Choose the community size, seed, and specific artifacts:
//! cargo run --release --example paper_experiments -- --customers 500 --seed 7 fig3 fig4
//! ```
//!
//! Artifacts: `fig3`, `fig4`, `fig5`, `fig6`, `table1`, or `all`
//! (default). The paper's scale is `--customers 500`; the default of 40
//! finishes in well under a minute on a laptop.

use std::error::Error;

use netmeter_sentinel::sim::{experiments, export, PaperScenario};

fn main() -> Result<(), Box<dyn Error>> {
    let mut customers = 40usize;
    let mut seed = 2015u64;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut artifacts: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--customers" | "-n" => {
                customers = args.next().ok_or("--customers needs a value")?.parse()?;
            }
            "--seed" | "-s" => {
                seed = args.next().ok_or("--seed needs a value")?.parse()?;
            }
            "--csv" => {
                csv_dir = Some(args.next().ok_or("--csv needs a directory")?.into());
            }
            "--help" | "-h" => {
                println!(
                    "usage: paper_experiments [--customers N] [--seed S] [--csv DIR] [fig3|fig4|fig5|fig6|table1|all]..."
                );
                return Ok(());
            }
            other => artifacts.push(other.to_string()),
        }
    }
    if artifacts.is_empty() || artifacts.iter().any(|a| a == "all") {
        artifacts = ["fig3", "fig4", "fig5", "fig6", "table1"]
            .map(String::from)
            .to_vec();
    }

    let scenario = if customers >= 500 {
        PaperScenario::paper(seed)
    } else {
        PaperScenario::small(customers, seed)
    };
    println!(
        "scenario: {} customers, seed {seed}, {} training days\n",
        scenario.customers, scenario.training_days
    );

    for artifact in &artifacts {
        match artifact.as_str() {
            "fig3" => {
                let result = experiments::run_fig3(&scenario)?;
                println!("{}", result.render());
                if let Some(dir) = &csv_dir {
                    std::fs::create_dir_all(dir)?;
                    let file = std::fs::File::create(dir.join("fig3.csv"))?;
                    export::export_prediction(file, &result)?;
                }
            }
            "fig4" => {
                let result = experiments::run_fig4(&scenario)?;
                println!("{}", result.render());
                if let Some(dir) = &csv_dir {
                    std::fs::create_dir_all(dir)?;
                    let file = std::fs::File::create(dir.join("fig4.csv"))?;
                    export::export_prediction(file, &result)?;
                }
            }
            "fig5" => {
                let result = experiments::run_fig5(&scenario)?;
                println!("{}", result.render());
                if let Some(dir) = &csv_dir {
                    std::fs::create_dir_all(dir)?;
                    let file = std::fs::File::create(dir.join("fig5.csv"))?;
                    export::export_attack(file, &result)?;
                }
            }
            "fig6" => {
                let result = experiments::run_fig6(&scenario)?;
                println!("{}", result.render());
                if let Some(dir) = &csv_dir {
                    std::fs::create_dir_all(dir)?;
                    let file = std::fs::File::create(dir.join("fig6.csv"))?;
                    export::export_accuracy(file, &result)?;
                }
            }
            "table1" => {
                let result = experiments::run_table1(&scenario)?;
                println!("Table 1 — Simulation Results for Detection Techniques");
                println!("{}", result.render());
            }
            other => return Err(format!("unknown artifact {other:?}").into()),
        }
    }
    Ok(())
}
